//! Mutable scenes: object-level edits over the HDoV environment.
//!
//! The paper's environments are frozen at build time; this module layers a
//! write path on top. A [`MutableScene`] owns
//!
//! * a WAL-durable [`MutableStore`] holding the
//!   scene's persistent state as three page files — `objects` (placement
//!   records), `dov` (the handle-keyed visibility table), `backbone` (the raw
//!   R-tree pages),
//! * the live R-tree backbone the edits go through, and
//! * a published [`SharedEnvironment`] readers query.
//!
//! Edits ([`insert`](MutableScene::insert), [`remove`](MutableScene::remove),
//! [`translate`](MutableScene::translate)) stage against a working set;
//! [`commit`](MutableScene::commit) computes the **dirty cell set** from the
//! moved bounding boxes ([`DovTable::affected_cells`]), re-estimates only
//! those cells ([`DovTable::recompute_cells`]), page-diffs the re-encoded
//! state against the previous epoch's images so the WAL carries only changed
//! pages, commits, and republishes the derived environment (V-pages, node
//! pages, internal LoDs rebuilt over the patched visibility).
//!
//! Readers are wait-free: they hold an `Arc` of the environment published at
//! some epoch ([`current`](MutableScene::current)), and a commit swaps in a
//! freshly built `Arc` without touching the one in-flight sessions pinned.
//!
//! Crash recovery is the store's: reopening replays the WAL, so
//! [`open`](MutableScene::open) reconstructs exactly the last committed
//! epoch — the acceptance test truncates and corrupts the log at every byte
//! boundary and checks answers stay byte-identical to a never-crashed oracle
//! (see the `crash_torture` bench bin).
//!
//! ## Handles vs. dense ids
//!
//! The frozen stack assumes dense object ids (`id == index`). A mutable scene
//! cannot: deleting object 3 must not renumber object 4 under a live handle.
//! So the durable state — placement records, DoV entries, backbone payloads —
//! is keyed by stable `u64` *handles* that are never reused, and each commit
//! derives the dense view (handle rank order) for the rebuilt environment,
//! threading a handle→dense remap through the tree lift
//! (`HdovTree::build_from_backbone`). Both directions of the translation are
//! monotonic, so sorted DoV entry lists stay sorted.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use hdov_geom::{Aabb, Vec3};
use hdov_obs::Counter;
use hdov_rtree::{RTree, SplitMethod};
use hdov_scene::{ObjectKind, PrototypeLibrary, Scene, SceneObject};
use hdov_storage::{
    MemPagedFile, MutableStore, Page, PageId, PagedFile, Result, StorageError, PAGE_SIZE,
};
use hdov_visibility::{CellGrid, CellGridConfig, CellId, DovTable};

use crate::shared::{PoolConfig, SharedEnvironment};
use crate::{HdovBuildConfig, HdovEnvironment, StorageScheme};

/// Stable identifier of an object in a mutable scene. Unlike the frozen
/// stack's dense [`ObjectId`](hdov_scene::ObjectId), handles survive
/// deletions of other objects and are never reused.
pub type ObjectHandle = u64;

/// File names of a mutable scene's store, in file-id order.
pub const SCENE_FILES: [&str; 3] = ["objects", "dov", "backbone"];

const OBJ_MAGIC: &[u8; 8] = b"HDOVOBJ1";
const DOV_MAGIC: &[u8; 8] = b"HDOVDOV1";
const BKB_MAGIC: &[u8; 8] = b"HDOVBKB1";
const FORMAT_VERSION: u32 = 1;
/// Bytes per placement record (page-aligned: 64 records per page).
const RECORD_LEN: usize = 64;
const RECORDS_PER_PAGE: usize = PAGE_SIZE / RECORD_LEN;

/// A committed object's placement, as returned by
/// [`MutableScene::object`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectInfo {
    /// Model kind.
    pub kind: ObjectKind,
    /// Index into the scene's prototype library.
    pub prototype: usize,
    /// World-space bounding box.
    pub mbr: Aabb,
}

/// A deferred backbone mutation, replayed in stage order at commit.
#[derive(Debug, Clone, Copy)]
enum RtOp {
    Insert(Aabb, u64),
    Delete(Aabb, u64),
}

/// The staged (uncommitted) state of a transaction in progress.
#[derive(Debug)]
struct WorkingSet {
    /// The object map with all staged edits applied.
    objects: BTreeMap<ObjectHandle, ObjectInfo>,
    /// Handles (as DoV keys) that existed at the last commit and were moved
    /// or removed — their previous visibility forces a recompute wherever
    /// they appeared.
    changed_old: Vec<u32>,
    /// Old *and* new bounding boxes of every edit.
    regions: Vec<Aabb>,
    /// Backbone mutations, in stage order.
    rtree_ops: Vec<RtOp>,
    /// Number of staged edit calls (diagnostics).
    edits: usize,
}

/// An editable scene over a WAL-durable store. See the module docs for the
/// commit pipeline and recovery story.
pub struct MutableScene {
    store: MutableStore,
    prototypes: PrototypeLibrary,
    cfg: HdovBuildConfig,
    scheme: StorageScheme,
    pool: PoolConfig,
    grid: Arc<CellGrid>,
    grid_cfg: CellGridConfig,
    /// Committed placements, keyed by handle.
    objects: BTreeMap<ObjectHandle, ObjectInfo>,
    next_handle: u64,
    /// The live backbone; entry payloads are handles.
    rtree: RTree<MemPagedFile>,
    /// Committed visibility, keyed by handle (`u32`-narrowed).
    dov: DovTable,
    /// Last committed page images per file (file-id order), for diffing.
    images: Vec<Vec<Vec<u8>>>,
    working: Option<WorkingSet>,
    shared: Arc<SharedEnvironment>,
}

impl MutableScene {
    /// Creates a mutable scene named `name` under `dir` from an initial
    /// (dense-id) scene: estimates visibility, builds the backbone by
    /// insertion (the mutable path ignores `cfg.bulk_load` — bulk loading
    /// assumes a frozen object set), persists epoch-0 bases plus a fresh
    /// WAL, and publishes the first environment.
    ///
    /// Initial handles equal the scene's dense ids.
    pub fn create(
        dir: &Path,
        name: &str,
        scene: &Scene,
        grid_cfg: &CellGridConfig,
        cfg: HdovBuildConfig,
        scheme: StorageScheme,
        pool: PoolConfig,
    ) -> Result<MutableScene> {
        if scene.is_empty() {
            return Err(StorageError::Corrupt(
                "a mutable scene needs at least one initial object".into(),
            ));
        }
        let grid = Arc::new(grid_cfg.build());
        // Dense ids double as the initial handles, so the computed table is
        // already handle-keyed.
        let dov = DovTable::compute(scene, &grid, &cfg.dov, cfg.threads);
        let mut objects = BTreeMap::new();
        let mut rtree = RTree::with_fanout(MemPagedFile::new(), cfg.split, cfg.fanout)?;
        for o in scene.objects() {
            assert!(o.id < u32::MAX as u64, "DoV entries key objects by u32");
            objects.insert(
                o.id,
                ObjectInfo {
                    kind: o.kind,
                    prototype: o.prototype,
                    mbr: o.mbr,
                },
            );
            rtree.insert(o.mbr, o.id)?;
        }
        let next_handle = scene.len() as u64;
        let images = encode_images(&objects, next_handle, grid_cfg, &cfg, &dov, &mut rtree)?;
        let store = MutableStore::create(
            dir,
            name,
            &SCENE_FILES
                .iter()
                .zip(images.iter())
                .map(|(n, pages)| (*n, pages.clone()))
                .collect::<Vec<_>>(),
        )?;
        let handles: Vec<u64> = objects.keys().copied().collect();
        let dense = dense_table(&dov, &handles, cfg.dov.rays_per_viewpoint);
        let shared = publish(
            &objects,
            &handles,
            scene.prototypes(),
            &grid,
            &cfg,
            scheme,
            pool,
            dense,
            &mut rtree,
        )?;
        Ok(MutableScene {
            store,
            prototypes: scene.prototypes().clone(),
            cfg,
            scheme,
            pool,
            grid,
            grid_cfg: grid_cfg.clone(),
            objects,
            next_handle,
            rtree,
            dov,
            images,
            working: None,
            shared,
        })
    }

    /// Opens an existing mutable scene: the store replays the WAL (torn
    /// tails discarded), then the placement records, DoV table, and backbone
    /// pages are decoded from the recovered epoch and the environment is
    /// rebuilt and published.
    ///
    /// The prototype library is not persisted (it is heavyweight geometry,
    /// reproducible from the scene generator's seed) and must be supplied;
    /// `cfg.dov` must match the table's original ray count.
    pub fn open(
        dir: &Path,
        name: &str,
        prototypes: PrototypeLibrary,
        cfg: HdovBuildConfig,
        scheme: StorageScheme,
        pool: PoolConfig,
    ) -> Result<MutableScene> {
        let store = MutableStore::open(dir, name, &SCENE_FILES)?;
        let snap = store.snapshot();
        let mut images = Vec::with_capacity(SCENE_FILES.len());
        for fid in 0..SCENE_FILES.len() as u32 {
            let pages = snap
                .materialize(fid)?
                .into_iter()
                .map(Vec::from)
                .collect::<Vec<_>>();
            images.push(pages);
        }

        // File 0: header + placement records.
        let (objects, next_handle, grid_cfg) = decode_objects(&images[0], &prototypes)?;
        let grid = Arc::new(grid_cfg.build());

        // File 1: the handle-keyed DoV table.
        let dov = decode_dov(&images[1])?;
        if dov.cell_count() != grid.cell_count() {
            return Err(corrupt("DoV table does not match the stored cell grid"));
        }
        if dov.rays_per_viewpoint() != cfg.dov.rays_per_viewpoint {
            return Err(corrupt(
                "cfg.dov.rays_per_viewpoint differs from the stored table's",
            ));
        }

        // File 2: the raw backbone pages.
        let mut rtree = decode_backbone(&images[2])?;

        let handles: Vec<u64> = objects.keys().copied().collect();
        let dense = dense_table(&dov, &handles, cfg.dov.rays_per_viewpoint);
        let shared = publish(
            &objects,
            &handles,
            &prototypes,
            &grid,
            &cfg,
            scheme,
            pool,
            dense,
            &mut rtree,
        )?;
        Ok(MutableScene {
            store,
            prototypes,
            cfg,
            scheme,
            pool,
            grid,
            grid_cfg,
            objects,
            next_handle,
            rtree,
            dov,
            images,
            working: None,
            shared,
        })
    }

    fn working(&mut self) -> &mut WorkingSet {
        let objects = &self.objects;
        self.working.get_or_insert_with(|| WorkingSet {
            objects: objects.clone(),
            changed_old: Vec::new(),
            regions: Vec::new(),
            rtree_ops: Vec::new(),
            edits: 0,
        })
    }

    /// Stages the insertion of a new object; returns its handle. Staged
    /// edits become visible (and durable) at [`commit`](Self::commit).
    pub fn insert(
        &mut self,
        kind: ObjectKind,
        prototype: usize,
        mbr: Aabb,
    ) -> Result<ObjectHandle> {
        if prototype >= self.prototypes.len() {
            return Err(corrupt("insert references an unknown prototype"));
        }
        if mbr.is_empty() {
            return Err(corrupt("insert with an empty bounding box"));
        }
        assert!(
            self.next_handle < u32::MAX as u64,
            "handle space exhausted (DoV entries key objects by u32)"
        );
        let handle = self.next_handle;
        self.next_handle += 1; // never reused, even if this edit rolls back
        let w = self.working();
        w.objects.insert(
            handle,
            ObjectInfo {
                kind,
                prototype,
                mbr,
            },
        );
        w.regions.push(mbr);
        w.rtree_ops.push(RtOp::Insert(mbr, handle));
        w.edits += 1;
        Ok(handle)
    }

    /// Stages the removal of `handle`.
    pub fn remove(&mut self, handle: ObjectHandle) -> Result<()> {
        let committed = self.objects.contains_key(&handle);
        let w = self.working();
        let Some(rec) = w.objects.remove(&handle) else {
            return Err(corrupt("remove references an unknown object handle"));
        };
        w.regions.push(rec.mbr);
        if committed {
            w.changed_old.push(handle as u32);
        }
        w.rtree_ops.push(RtOp::Delete(rec.mbr, handle));
        w.edits += 1;
        Ok(())
    }

    /// Stages a rigid translation of `handle` by `delta` (the object's world
    /// placement is a pure function of its bounding box, so moving the box
    /// moves the geometry).
    pub fn translate(&mut self, handle: ObjectHandle, delta: Vec3) -> Result<()> {
        let committed = self.objects.contains_key(&handle);
        let w = self.working();
        let Some(rec) = w.objects.get_mut(&handle) else {
            return Err(corrupt("translate references an unknown object handle"));
        };
        let old = rec.mbr;
        let new = Aabb {
            min: old.min + delta,
            max: old.max + delta,
        };
        rec.mbr = new;
        w.regions.push(old);
        w.regions.push(new);
        if committed {
            w.changed_old.push(handle as u32);
        }
        w.rtree_ops.push(RtOp::Delete(old, handle));
        w.rtree_ops.push(RtOp::Insert(new, handle));
        w.edits += 1;
        Ok(())
    }

    /// Discards every staged edit. (Handles allocated by staged inserts are
    /// *not* returned to the pool — handles are never reused.)
    pub fn rollback(&mut self) {
        self.working = None;
    }

    /// Number of staged (uncommitted) edits.
    pub fn pending_edits(&self) -> usize {
        self.working.as_ref().map_or(0, |w| w.edits)
    }

    /// Commits every staged edit as one durable transaction and returns the
    /// new epoch (or the current one when nothing is staged).
    ///
    /// Pipeline: apply the staged backbone mutations; compute the dirty cell
    /// set from the *previous* table (old visibility of moved objects, plus
    /// cells whose unoccluded solid-angle bound on any changed region
    /// reaches the estimator's resolution); materialise the dense scene;
    /// re-estimate only the dirty cells; page-diff the re-encoded files
    /// against the previous epoch's images; WAL-commit the changed pages;
    /// rebuild and publish the derived environment.
    ///
    /// An I/O error mid-commit leaves the in-memory instance inconsistent
    /// with the durable state — drop it and [`open`](Self::open) again (the
    /// store itself is never torn: the WAL either carries the full commit or
    /// none of it).
    pub fn commit(&mut self) -> Result<u64> {
        let Some(w) = self.working.take() else {
            return Ok(self.store.epoch());
        };
        if w.objects.is_empty() {
            self.working = Some(w);
            return Err(corrupt("cannot commit an empty scene"));
        }

        // 1. Backbone. Deletes use the exact MBR staged for them, so a
        //    failure here means internal corruption, not user error.
        for op in &w.rtree_ops {
            match *op {
                RtOp::Insert(mbr, h) => self.rtree.insert(mbr, h)?,
                RtOp::Delete(mbr, h) => {
                    if !self.rtree.delete(mbr, h)? {
                        return Err(corrupt("backbone entry missing during commit"));
                    }
                }
            }
        }

        // 2. Dirty cells, judged against the previous epoch's visibility.
        let dirty = self
            .dov
            .affected_cells(&self.grid, &w.changed_old, &w.regions);
        hdov_obs::add(Counter::DovRepatches, dirty.len() as u64);

        // 3. Dense view of the edited scene.
        self.objects = w.objects;
        let handles: Vec<u64> = self.objects.keys().copied().collect();
        let scene = self.dense_scene(&handles);

        // 4. Translate the surviving visibility to dense keys and
        //    re-estimate only the dirty cells.
        let mut dense = dense_table(&self.dov, &handles, self.cfg.dov.rays_per_viewpoint);
        dense.recompute_cells(&scene, &self.grid, &self.cfg.dov, &dirty);

        // 5. Back to handle keys for the durable image.
        self.dov = handle_table(&dense, &handles);

        // 6. Encode, page-diff, WAL-commit.
        let images = encode_images(
            &self.objects,
            self.next_handle,
            &self.grid_cfg,
            &self.cfg,
            &self.dov,
            &mut self.rtree,
        )?;
        let mut txn = self.store.begin();
        for (fid, new_pages) in images.iter().enumerate() {
            let old_pages = &self.images[fid];
            for (pid, page) in new_pages.iter().enumerate() {
                if old_pages.get(pid) != Some(page) {
                    txn.write_page(fid as u32, pid as u64, page);
                }
            }
        }
        let epoch = self.store.commit(txn)?;
        self.images = images;

        // 7. Derived environment for the new epoch.
        self.shared = publish(
            &self.objects,
            &handles,
            &self.prototypes,
            &self.grid,
            &self.cfg,
            self.scheme,
            self.pool,
            dense,
            &mut self.rtree,
        )?;
        Ok(epoch)
    }

    /// Folds the WAL into fresh frozen bases (atomic temp + rename,
    /// generation = epoch) and truncates the log. Staged edits survive;
    /// snapshots and published environments are unaffected.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.store.checkpoint()
    }

    /// The committed epoch's environment. The returned `Arc` pins that
    /// epoch: later commits publish a *new* environment and never touch this
    /// one, so in-flight [`search_shared`](crate::search_shared) sessions
    /// are wait-free against writers.
    pub fn current(&self) -> Arc<SharedEnvironment> {
        Arc::clone(&self.shared)
    }

    /// The current commit epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Committed placement of `handle`, if it exists.
    pub fn object(&self, handle: ObjectHandle) -> Option<ObjectInfo> {
        self.objects.get(&handle).copied()
    }

    /// Committed handles, ascending.
    pub fn handles(&self) -> Vec<ObjectHandle> {
        self.objects.keys().copied().collect()
    }

    /// Number of committed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are committed (never, in practice:
    /// [`create`](Self::create) and [`commit`](Self::commit) both reject
    /// empty scenes).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The viewing-cell grid.
    pub fn grid(&self) -> &Arc<CellGrid> {
        &self.grid
    }

    /// The underlying durable store (WAL path, epoch, page counts).
    pub fn store(&self) -> &MutableStore {
        &self.store
    }

    /// Materialises the committed state as a dense-id [`Scene`] — the
    /// from-scratch-rebuild oracle used by the consistency tests.
    pub fn dense_scene_snapshot(&self) -> Scene {
        let handles: Vec<u64> = self.objects.keys().copied().collect();
        self.dense_scene(&handles)
    }

    fn dense_scene(&self, handles: &[u64]) -> Scene {
        let objs = handles
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let r = &self.objects[h];
                SceneObject::new(i as u64, r.kind, r.prototype, r.mbr)
            })
            .collect();
        Scene::new(objs, self.prototypes.clone())
    }
}

fn corrupt(msg: &str) -> StorageError {
    StorageError::Corrupt(msg.to_string())
}

/// Handle-keyed table → dense-keyed (dense id = handle rank). Entries whose
/// handle is gone (removed objects) are dropped; rank translation is
/// monotonic, so sorted lists stay sorted.
fn dense_table(dov: &DovTable, handles: &[u64], rays: usize) -> DovTable {
    let cells = (0..dov.cell_count() as CellId)
        .map(|c| {
            dov.cell(c)
                .iter()
                .filter_map(|&(h, d)| {
                    handles
                        .binary_search(&(h as u64))
                        .ok()
                        .map(|i| (i as u32, d))
                })
                .collect()
        })
        .collect();
    DovTable::from_parts(cells, rays).expect("rank translation preserves table invariants")
}

/// Dense-keyed table → handle-keyed (the durable form).
fn handle_table(dense: &DovTable, handles: &[u64]) -> DovTable {
    let cells = (0..dense.cell_count() as CellId)
        .map(|c| {
            dense
                .cell(c)
                .iter()
                .map(|&(i, d)| (handles[i as usize] as u32, d))
                .collect()
        })
        .collect();
    DovTable::from_parts(cells, dense.rays_per_viewpoint())
        .expect("rank translation preserves table invariants")
}

/// Builds and publishes the derived environment for one epoch: the tree is
/// lifted from the live backbone with handle payloads remapped to dense
/// ids, then V-pages, internal LoDs, and model banks are rebuilt.
#[allow(clippy::too_many_arguments)]
fn publish(
    objects: &BTreeMap<ObjectHandle, ObjectInfo>,
    handles: &[u64],
    prototypes: &PrototypeLibrary,
    grid: &Arc<CellGrid>,
    cfg: &HdovBuildConfig,
    scheme: StorageScheme,
    pool: PoolConfig,
    dense: DovTable,
    rtree: &mut RTree<MemPagedFile>,
) -> Result<Arc<SharedEnvironment>> {
    let objs = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let r = &objects[h];
            SceneObject::new(i as u64, r.kind, r.prototype, r.mbr)
        })
        .collect();
    let scene = Scene::new(objs, prototypes.clone());
    let remap = |h: u64| {
        handles
            .binary_search(&h)
            .expect("backbone payload is not a live handle") as u64
    };
    let env = HdovEnvironment::build_from_backbone(
        &scene,
        Arc::clone(grid),
        cfg.clone(),
        scheme,
        Arc::new(dense),
        rtree,
        &remap,
    )?;
    Ok(Arc::new(env.into_shared(pool)))
}

// ---------------------------------------------------------------------------
// Durable encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

fn kind_to_u8(kind: ObjectKind) -> u8 {
    match kind {
        ObjectKind::Building => 0,
        ObjectKind::Tower => 1,
        ObjectKind::Bunny => 2,
        ObjectKind::Custom => 3,
    }
}

fn kind_from_u8(v: u8) -> Result<ObjectKind> {
    Ok(match v {
        0 => ObjectKind::Building,
        1 => ObjectKind::Tower,
        2 => ObjectKind::Bunny,
        3 => ObjectKind::Custom,
        _ => return Err(corrupt("unknown object kind in placement record")),
    })
}

fn split_to_u8(split: SplitMethod) -> u8 {
    match split {
        SplitMethod::AngTanLinear => 0,
        SplitMethod::GuttmanQuadratic => 1,
    }
}

fn split_from_u8(v: u8) -> Result<SplitMethod> {
    Ok(match v {
        0 => SplitMethod::AngTanLinear,
        1 => SplitMethod::GuttmanQuadratic,
        _ => return Err(corrupt("unknown split method in backbone meta")),
    })
}

/// Encodes the three durable files as full page images.
///
/// * file 0 `objects` — page 0: magic, version, object count, next handle,
///   grid config (the environment must reopen with the *same* cells);
///   pages 1…: 64-byte placement records, handle-sorted.
/// * file 1 `dov` — page 0: magic, version, blob length; pages 1…: the
///   handle-keyed [`DovTable::encode`] blob.
/// * file 2 `backbone` — page 0: magic, version, split method, root page,
///   height, fan-out, node/object counts, page count; pages 1…: the raw
///   R-tree pages (logical page *i* at physical *i* + 1).
fn encode_images(
    objects: &BTreeMap<ObjectHandle, ObjectInfo>,
    next_handle: u64,
    grid_cfg: &CellGridConfig,
    cfg: &HdovBuildConfig,
    dov: &DovTable,
    rtree: &mut RTree<MemPagedFile>,
) -> Result<Vec<Vec<Vec<u8>>>> {
    // File 0: placements.
    let mut header = vec![0u8; PAGE_SIZE];
    header[0..8].copy_from_slice(OBJ_MAGIC);
    put_u32(&mut header, 8, FORMAT_VERSION);
    put_u64(&mut header, 16, objects.len() as u64);
    put_u64(&mut header, 24, next_handle);
    put_u64(&mut header, 32, cfg.dov.rays_per_viewpoint as u64);
    put_f64(&mut header, 40, grid_cfg.region.min.x);
    put_f64(&mut header, 48, grid_cfg.region.min.y);
    put_f64(&mut header, 56, grid_cfg.region.min.z);
    put_f64(&mut header, 64, grid_cfg.region.max.x);
    put_f64(&mut header, 72, grid_cfg.region.max.y);
    put_f64(&mut header, 80, grid_cfg.region.max.z);
    put_u64(&mut header, 88, grid_cfg.nx as u64);
    put_u64(&mut header, 96, grid_cfg.ny as u64);
    let mut obj_pages = vec![header];
    let record_pages = objects.len().div_ceil(RECORDS_PER_PAGE);
    obj_pages.resize(1 + record_pages, vec![0u8; PAGE_SIZE]);
    for (i, (handle, rec)) in objects.iter().enumerate() {
        let page = &mut obj_pages[1 + i / RECORDS_PER_PAGE];
        let off = (i % RECORDS_PER_PAGE) * RECORD_LEN;
        put_u64(page, off, *handle);
        page[off + 8] = kind_to_u8(rec.kind);
        put_u32(page, off + 12, rec.prototype as u32);
        put_f64(page, off + 16, rec.mbr.min.x);
        put_f64(page, off + 24, rec.mbr.min.y);
        put_f64(page, off + 32, rec.mbr.min.z);
        put_f64(page, off + 40, rec.mbr.max.x);
        put_f64(page, off + 48, rec.mbr.max.y);
        put_f64(page, off + 56, rec.mbr.max.z);
    }

    // File 1: the DoV blob.
    let blob = dov.encode();
    let mut dov_header = vec![0u8; PAGE_SIZE];
    dov_header[0..8].copy_from_slice(DOV_MAGIC);
    put_u32(&mut dov_header, 8, FORMAT_VERSION);
    put_u64(&mut dov_header, 16, blob.len() as u64);
    let mut dov_pages = vec![dov_header];
    for chunk in blob.chunks(PAGE_SIZE) {
        let mut page = vec![0u8; PAGE_SIZE];
        page[..chunk.len()].copy_from_slice(chunk);
        dov_pages.push(page);
    }

    // File 2: the backbone.
    let stats = rtree.stats();
    let mut meta = vec![0u8; PAGE_SIZE];
    meta[0..8].copy_from_slice(BKB_MAGIC);
    put_u32(&mut meta, 8, FORMAT_VERSION);
    meta[12] = split_to_u8(cfg.split);
    put_u64(&mut meta, 16, rtree.root().0);
    put_u32(&mut meta, 24, stats.height);
    put_u32(&mut meta, 28, rtree.max_entries() as u32);
    put_u64(&mut meta, 32, stats.node_count);
    put_u64(&mut meta, 40, stats.object_count);
    let file_pages = rtree.file().page_count();
    put_u64(&mut meta, 48, file_pages);
    let mut bkb_pages = vec![meta];
    let mut buf = Page::zeroed();
    for i in 0..file_pages {
        rtree.file_mut().read_page(PageId(i), &mut buf)?;
        bkb_pages.push(buf.bytes().to_vec());
    }

    Ok(vec![obj_pages, dov_pages, bkb_pages])
}

/// Decodes file 0 into the placement map plus the persisted grid config.
fn decode_objects(
    pages: &[Vec<u8>],
    prototypes: &PrototypeLibrary,
) -> Result<(BTreeMap<ObjectHandle, ObjectInfo>, u64, CellGridConfig)> {
    let header = pages
        .first()
        .ok_or_else(|| corrupt("objects file is empty"))?;
    if &header[0..8] != OBJ_MAGIC || get_u32(header, 8) != FORMAT_VERSION {
        return Err(corrupt("bad objects-file header"));
    }
    let count = get_u64(header, 16) as usize;
    let next_handle = get_u64(header, 24);
    let grid_cfg = CellGridConfig {
        region: Aabb {
            min: Vec3::new(
                get_f64(header, 40),
                get_f64(header, 48),
                get_f64(header, 56),
            ),
            max: Vec3::new(
                get_f64(header, 64),
                get_f64(header, 72),
                get_f64(header, 80),
            ),
        },
        nx: get_u64(header, 88) as usize,
        ny: get_u64(header, 96) as usize,
    };
    let mut objects = BTreeMap::new();
    let mut prev: Option<u64> = None;
    for i in 0..count {
        let page = pages
            .get(1 + i / RECORDS_PER_PAGE)
            .ok_or_else(|| corrupt("objects file truncated"))?;
        let off = (i % RECORDS_PER_PAGE) * RECORD_LEN;
        let rec = &page[off..off + RECORD_LEN];
        let handle = get_u64(rec, 0);
        if prev.is_some_and(|p| p >= handle) || handle >= next_handle {
            return Err(corrupt("placement records out of handle order"));
        }
        prev = Some(handle);
        let kind = kind_from_u8(rec[8])?;
        let prototype = get_u32(rec, 12) as usize;
        if prototype >= prototypes.len() {
            return Err(corrupt("placement record references unknown prototype"));
        }
        let mbr = Aabb {
            min: Vec3::new(get_f64(rec, 16), get_f64(rec, 24), get_f64(rec, 32)),
            max: Vec3::new(get_f64(rec, 40), get_f64(rec, 48), get_f64(rec, 56)),
        };
        if mbr.is_empty() {
            return Err(corrupt("placement record has an empty bounding box"));
        }
        objects.insert(
            handle,
            ObjectInfo {
                kind,
                prototype,
                mbr,
            },
        );
    }
    Ok((objects, next_handle, grid_cfg))
}

/// Decodes file 1 into the handle-keyed DoV table.
fn decode_dov(pages: &[Vec<u8>]) -> Result<DovTable> {
    let header = pages.first().ok_or_else(|| corrupt("dov file is empty"))?;
    if &header[0..8] != DOV_MAGIC || get_u32(header, 8) != FORMAT_VERSION {
        return Err(corrupt("bad dov-file header"));
    }
    let blob_len = get_u64(header, 16) as usize;
    let mut blob = Vec::with_capacity(blob_len);
    for chunk in pages.iter().skip(1) {
        let take = (blob_len - blob.len()).min(PAGE_SIZE);
        blob.extend_from_slice(&chunk[..take]);
        if blob.len() == blob_len {
            break;
        }
    }
    if blob.len() != blob_len {
        return Err(corrupt("dov file truncated"));
    }
    DovTable::decode(&blob).ok_or_else(|| corrupt("dov blob fails to decode"))
}

/// Decodes file 2 into a live backbone.
fn decode_backbone(pages: &[Vec<u8>]) -> Result<RTree<MemPagedFile>> {
    let meta = pages
        .first()
        .ok_or_else(|| corrupt("backbone file is empty"))?;
    if &meta[0..8] != BKB_MAGIC || get_u32(meta, 8) != FORMAT_VERSION {
        return Err(corrupt("bad backbone-file header"));
    }
    let split = split_from_u8(meta[12])?;
    let root = get_u64(meta, 16);
    let height = get_u32(meta, 24);
    let max_entries = get_u32(meta, 28) as usize;
    let node_count = get_u64(meta, 32);
    let object_count = get_u64(meta, 40);
    let file_pages = get_u64(meta, 48) as usize;
    if root as usize >= file_pages || pages.len() < 1 + file_pages {
        return Err(corrupt("backbone file truncated"));
    }
    let mut file = MemPagedFile::new();
    for raw in &pages[1..1 + file_pages] {
        file.append_page(&Page::from_bytes(raw))?;
    }
    Ok(RTree::from_parts(
        file,
        PageId(root),
        height,
        split,
        node_count,
        object_count,
        max_entries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_scene::CityConfig;
    use hdov_visibility::CellGridConfig;

    fn test_scene() -> Scene {
        CityConfig::tiny().seed(7).generate()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdov_mscene_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build(dir: &std::path::Path) -> MutableScene {
        let scene = test_scene();
        let grid_cfg = CellGridConfig {
            nx: 4,
            ny: 4,
            ..CellGridConfig::for_scene(&scene)
        };
        MutableScene::create(
            dir,
            "edit",
            &scene,
            &grid_cfg,
            HdovBuildConfig::fast_test(),
            StorageScheme::IndexedVertical,
            PoolConfig::default(),
        )
        .unwrap()
    }

    fn answers(env: &SharedEnvironment) -> Vec<Vec<(crate::ResultKey, usize)>> {
        let mut out = Vec::new();
        for cell in 0..env.grid().cell_count() as CellId {
            let mut ctx = crate::SessionCtx::new();
            let (res, _) = crate::search_shared(env, &mut ctx, cell, 0.0, None, false).unwrap();
            let mut entries: Vec<_> = res.entries().iter().map(|e| (e.key, e.level)).collect();
            entries.sort();
            out.push(entries);
        }
        out
    }

    #[test]
    fn create_commit_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        let mut ms = build(&dir);
        let n0 = ms.len();
        let proto_count = ms.prototypes.len();

        // Insert, move, remove — one transaction.
        let probe = ms.object(0).unwrap();
        let h = ms.insert(probe.kind, probe.prototype, probe.mbr).unwrap();
        assert_eq!(h, n0 as u64);
        ms.translate(h, Vec3::new(3.0, 1.0, 0.0)).unwrap();
        ms.remove(1).unwrap();
        assert_eq!(ms.pending_edits(), 3);
        let epoch = ms.commit().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(ms.len(), n0);
        assert!(ms.object(1).is_none());
        assert!(ms.object(h).is_some());

        let expect = answers(&ms.current());
        let protos = ms.prototypes.clone();
        drop(ms);

        let ms2 = MutableScene::open(
            &dir,
            "edit",
            protos,
            HdovBuildConfig::fast_test(),
            StorageScheme::IndexedVertical,
            PoolConfig::default(),
        )
        .unwrap();
        assert_eq!(ms2.epoch(), 1);
        assert_eq!(ms2.len(), n0);
        assert_eq!(answers(&ms2.current()), expect);
        assert_eq!(ms2.prototypes.len(), proto_count);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_matches_from_scratch_rebuild() {
        let dir = tmp("oracle");
        let mut ms = build(&dir);
        ms.translate(0, Vec3::new(5.0, -2.0, 0.0)).unwrap();
        ms.remove(2).unwrap();
        ms.commit().unwrap();

        // Oracle: full rebuild from the committed dense scene.
        let scene = ms.dense_scene_snapshot();
        let grid_cfg = CellGridConfig {
            region: ms.grid.region(),
            nx: 4,
            ny: 4,
        };
        let oracle = HdovEnvironment::build(
            &scene,
            &grid_cfg,
            HdovBuildConfig::fast_test(),
            StorageScheme::IndexedVertical,
        )
        .unwrap()
        .into_shared(PoolConfig::default());
        assert_eq!(answers(&ms.current()), answers(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn readers_pin_their_epoch() {
        let dir = tmp("pin");
        let mut ms = build(&dir);
        let before = ms.current();
        let baseline = answers(&before);
        ms.translate(0, Vec3::new(10.0, 10.0, 0.0)).unwrap();
        ms.commit().unwrap();
        // The pinned environment still answers from the old epoch.
        assert_eq!(answers(&before), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_discards_stage_and_burns_handles() {
        let dir = tmp("rollback");
        let mut ms = build(&dir);
        let n0 = ms.len();
        let probe = ms.object(0).unwrap();
        let h1 = ms.insert(probe.kind, probe.prototype, probe.mbr).unwrap();
        ms.rollback();
        assert_eq!(ms.pending_edits(), 0);
        assert_eq!(ms.len(), n0);
        assert_eq!(ms.commit().unwrap(), 0, "nothing staged, epoch unchanged");
        let h2 = ms.insert(probe.kind, probe.prototype, probe.mbr).unwrap();
        assert!(h2 > h1, "handles are never reused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let dir = tmp("unknown");
        let mut ms = build(&dir);
        assert!(ms.remove(9999).is_err());
        assert!(ms.translate(9999, Vec3::new(1.0, 0.0, 0.0)).is_err());
        let h = ms.handles()[0];
        ms.remove(h).unwrap();
        assert!(ms.translate(h, Vec3::new(1.0, 0.0, 0.0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_preserves_answers() {
        let dir = tmp("ckpt");
        let mut ms = build(&dir);
        ms.translate(0, Vec3::new(2.0, 2.0, 0.0)).unwrap();
        ms.commit().unwrap();
        let expect = answers(&ms.current());
        ms.checkpoint().unwrap();
        assert_eq!(
            ms.store.wal_len(),
            hdov_storage::wal::WAL_HEADER_LEN,
            "checkpoint truncates the log"
        );
        let protos = ms.prototypes.clone();
        drop(ms);
        let ms2 = MutableScene::open(
            &dir,
            "edit",
            protos,
            HdovBuildConfig::fast_test(),
            StorageScheme::IndexedVertical,
            PoolConfig::default(),
        )
        .unwrap();
        assert_eq!(ms2.epoch(), 1);
        assert_eq!(answers(&ms2.current()), expect);
        std::fs::remove_dir_all(&dir).ok();
    }
}
