//! Delta search: the walkthrough optimisation of §5.4.
//!
//! "For VISUAL, the search algorithm can be improved to a 'delta' search
//! algorithm which does not retrieve objects that have been retrieved in the
//! previous queries. As the models stored in the database are heavy-weighted,
//! delta search can reduce the I/O cost significantly."
//!
//! [`DeltaSearch`] tracks the resident set (model key → LoD level and bytes)
//! across a sequence of queries, produces the skip map consumed by
//! [`search`](crate::search::search), and accounts resident/peak memory —
//! the numbers behind the paper's 28 MB (VISUAL) vs 62 MB (REVIEW)
//! comparison.

use crate::search::{QueryResult, ResultKey};
use std::collections::HashMap;

/// Outcome of folding one query into the resident set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaSummary {
    /// Entries fetched this query (new key, or level change).
    pub added: usize,
    /// Entries reused from the resident set.
    pub retained: usize,
    /// Entries evicted because they left the result set.
    pub evicted: usize,
}

/// Resident-set tracker for walkthrough sessions.
#[derive(Debug, Default)]
pub struct DeltaSearch {
    resident: HashMap<ResultKey, (usize, u64)>, // level, bytes
    resident_bytes: u64,
    peak_bytes: u64,
}

impl DeltaSearch {
    /// An empty resident set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The skip map to pass to [`search`](crate::search::search): resident
    /// key → resident level.
    pub fn skip_map(&self) -> HashMap<ResultKey, usize> {
        self.resident
            .iter()
            .map(|(k, &(lvl, _))| (*k, lvl))
            .collect()
    }

    /// Folds a query result into the resident set: newly fetched entries are
    /// added, reused entries retained, and entries absent from the result are
    /// evicted (the paper's systems do not cache beyond the active set).
    pub fn apply(&mut self, result: &QueryResult) -> DeltaSummary {
        let mut summary = DeltaSummary::default();
        let mut next: HashMap<ResultKey, (usize, u64)> =
            HashMap::with_capacity(result.entries().len());
        for e in result.entries() {
            if e.cached {
                summary.retained += 1;
            } else {
                summary.added += 1;
            }
            next.insert(e.key, (e.level, e.bytes));
        }
        summary.evicted = self
            .resident
            .keys()
            .filter(|k| !next.contains_key(k))
            .count();
        self.resident = next;
        self.resident_bytes = self.resident.values().map(|&(_, b)| b).sum();
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
        summary
    }

    /// Merges a (possibly partial) result into the resident set without
    /// evicting anything — used by budget-truncated progressive frames,
    /// where absence from the result only means "not re-confirmed yet".
    pub fn merge(&mut self, result: &QueryResult) -> DeltaSummary {
        let mut summary = DeltaSummary::default();
        for e in result.entries() {
            if e.cached {
                summary.retained += 1;
            } else {
                summary.added += 1;
            }
            self.resident.insert(e.key, (e.level, e.bytes));
        }
        self.resident_bytes = self.resident.values().map(|&(_, b)| b).sum();
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
        summary
    }

    /// Iterates over the resident keys (what is currently "on screen").
    pub fn resident_keys(&self) -> impl Iterator<Item = ResultKey> + '_ {
        self.resident.keys().copied()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Peak resident bytes over the session.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of resident models.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Empties the resident set (peak is kept).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.resident_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ResultEntry;

    fn result(entries: Vec<ResultEntry>) -> QueryResult {
        let mut r = QueryResult::default();
        for e in entries {
            r.push_for_test(e);
        }
        r
    }

    fn obj(id: u64, level: usize, bytes: u64, cached: bool) -> ResultEntry {
        ResultEntry {
            key: ResultKey::Object(id),
            level,
            polygons: bytes / 10,
            bytes,
            dov: 0.1,
            cached,
        }
    }

    #[test]
    fn first_apply_adds_everything() {
        let mut d = DeltaSearch::new();
        let s = d.apply(&result(vec![obj(1, 0, 100, false), obj(2, 1, 50, false)]));
        assert_eq!(
            s,
            DeltaSummary {
                added: 2,
                retained: 0,
                evicted: 0
            }
        );
        assert_eq!(d.resident_bytes(), 150);
        assert_eq!(d.resident_count(), 2);
    }

    #[test]
    fn retained_and_evicted_tracked() {
        let mut d = DeltaSearch::new();
        d.apply(&result(vec![obj(1, 0, 100, false), obj(2, 1, 50, false)]));
        // Object 1 reused (cached), object 2 gone, object 3 new.
        let s = d.apply(&result(vec![obj(1, 0, 100, true), obj(3, 0, 70, false)]));
        assert_eq!(
            s,
            DeltaSummary {
                added: 1,
                retained: 1,
                evicted: 1
            }
        );
        assert_eq!(d.resident_bytes(), 170);
    }

    #[test]
    fn peak_survives_eviction() {
        let mut d = DeltaSearch::new();
        d.apply(&result(vec![obj(1, 0, 1000, false)]));
        d.apply(&result(vec![obj(2, 0, 10, false)]));
        assert_eq!(d.peak_bytes(), 1000);
        assert_eq!(d.resident_bytes(), 10);
    }

    #[test]
    fn skip_map_reflects_levels() {
        let mut d = DeltaSearch::new();
        d.apply(&result(vec![obj(7, 2, 40, false)]));
        let m = d.skip_map();
        assert_eq!(m.get(&ResultKey::Object(7)), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets_resident_not_peak() {
        let mut d = DeltaSearch::new();
        d.apply(&result(vec![obj(1, 0, 500, false)]));
        d.clear();
        assert_eq!(d.resident_bytes(), 0);
        assert_eq!(d.resident_count(), 0);
        assert_eq!(d.peak_bytes(), 500);
    }
}
