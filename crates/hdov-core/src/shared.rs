//! The concurrent read path: query a built HDoV-tree from many sessions at
//! once.
//!
//! The single-session engine ([`HdovEnvironment`](crate::HdovEnvironment))
//! threads `&mut` from the query down to the simulated disks, so one tree
//! serves one walkthrough at a time. This module freezes a built environment
//! into a [`SharedEnvironment`]: every file becomes an immutable
//! [`SharedCachedFile`] (lock-striped LRU pool + atomic counters), and all
//! per-session mutability — disk-head positions, I/O counters, the flipped-in
//! V-page-index segment — moves into a per-session [`SessionCtx`]. Queries
//! then take `&SharedEnvironment` and any number of threads can search
//! concurrently, sharing pool contents.
//!
//! Two read-path changes relative to the sequential engine:
//!
//! * **Batched V-page reads** — after the segment flip, the distinct V-page
//!   disk pages of the cell are read once, in ascending order (one
//!   sequential run), instead of being pointer-chased mid-recursion
//!   ([`SharedEnvironment::prefetch_cell`]). The horizontal scheme cannot
//!   batch (its layout is node-major, the paper's §4.1 weakness) and skips
//!   this.
//! * **Pool sharing** — V-pages, nodes, and models warmed by one session are
//!   hits for every other session in the same cell neighbourhood.
//!
//! The traversal itself ([`search_shared`]) mirrors
//! [`search`](crate::search::search) decision-for-decision, so a
//! single-session run returns bit-identical result entries.

use crate::budget::{BudgetClock, QueryBudget};
use crate::build::{HdovTree, TerminationHeuristic};
use crate::delta::{DeltaSearch, DeltaSummary};
use crate::search::{
    select_level, terminates_with, DegradeCause, ObjectModels, QueryResult, ResultEntry, ResultKey,
    SearchStats, BUDGET_EXHAUSTED_DETAIL,
};
use crate::storage::{StorageScheme, VisibilityStore};
use crate::vpage::VPage;
use hdov_geom::solid_angle::MAX_DOV;
use hdov_geom::Vec3;
use hdov_obs::Phase;
use hdov_scene::{ModelHandle, ModelStore};
use hdov_storage::codec::ByteReader;
use hdov_storage::{
    FaultPlan, IoCursor, Page, PageId, PagedFile, ReplicaHealth, Result, RetryPolicy, ScrubReport,
    Scrubber, SharedCachedFile, SharedFaultyFile, StorageError, PAGE_SIZE,
};
use hdov_visibility::{CellGrid, CellId, DovTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Nil pointer in a dense V-page-index segment (matches the vertical
/// scheme's on-disk encoding).
const NIL: u64 = u64::MAX;

/// Buffer-pool geometry for a frozen environment.
///
/// Each of the five files (nodes, internal LoDs, object models, V-page
/// index, V-pages) gets its own pool of `capacity_pages` pages striped over
/// `shards` locks, so total pool memory is `5 · capacity_pages · 4 KiB`.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Pages per pool.
    pub capacity_pages: usize,
    /// Lock stripes per pool.
    pub shards: usize,
    /// Whether pooled frames memoize their decoded overlay (nodes and
    /// V-pages decode at most once per pool residency). Purely an in-memory
    /// CPU saving: switching it off reruns every decoder but changes no
    /// query answers and no simulated costs (the `overlay_residency`
    /// integration test pins this down).
    pub decode_overlay: bool,
    /// Transient-failure retry policy applied by every pool on page reads.
    /// Only engages under armed fault injection
    /// ([`SharedEnvironment::arm_faults`]); fault-free reads never retry.
    pub retry: RetryPolicy,
    /// Replica count every pool is padded to (≥ 1). File backends frozen
    /// with [`StorageBackend::replicated`](hdov_storage::StorageBackend)
    /// already carry their on-disk copies; this pads mem-backed stores so
    /// failover and repair are exercisable without files. Fault-free reads
    /// never touch replicas, so answers and simulated costs are unchanged.
    pub replicas: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity_pages: 128,
            shards: 8,
            decode_overlay: true,
            retry: RetryPolicy::default(),
            replicas: 1,
        }
    }
}

/// Adapts a `(pool, cursor)` pair to [`PagedFile`] so read-only consumers
/// written against the sequential API — [`ModelStore::fetch`] in particular —
/// work on the shared path unchanged.
pub struct CursorFile<'a> {
    pool: &'a SharedCachedFile,
    cursor: &'a mut IoCursor,
}

impl<'a> CursorFile<'a> {
    /// Wraps `pool` with per-session state `cursor`.
    pub fn new(pool: &'a SharedCachedFile, cursor: &'a mut IoCursor) -> Self {
        CursorFile { pool, cursor }
    }
}

impl PagedFile for CursorFile<'_> {
    fn read_page(&mut self, id: PageId, out: &mut Page) -> Result<()> {
        self.pool.read_page(self.cursor, id, out)
    }

    fn write_page(&mut self, _id: PageId, _page: &Page) -> Result<()> {
        Err(StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "shared environments are immutable",
        )))
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        Err(StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "shared environments are immutable",
        )))
    }

    fn page_count(&self) -> u64 {
        self.pool.page_count()
    }
}

/// Frozen V-page records behind a shared pool (the `&`-shareable counterpart
/// of the schemes' internal `VPageFile`).
pub struct SharedVPageFile {
    pool: SharedCachedFile,
    records: u64,
    record_bytes: usize,
    records_per_page: u64,
    codec: crate::vpage::VPageCodec,
}

impl SharedVPageFile {
    pub(crate) fn new(
        pool: SharedCachedFile,
        records: u64,
        record_bytes: usize,
        records_per_page: u64,
        codec: crate::vpage::VPageCodec,
    ) -> Self {
        SharedVPageFile {
            pool,
            records,
            record_bytes,
            records_per_page,
            codec,
        }
    }

    /// The disk page holding record `idx` (for batched prefetch).
    pub fn disk_page_of(&self, idx: u64) -> u64 {
        idx / self.records_per_page
    }

    /// Reads record `idx`, charging any pool miss to `cursor`.
    ///
    /// Zero-copy: the disk page comes back as a pooled frame, and the
    /// frame's overlay holds every record of the page decoded (trailing
    /// unused slots are zero bytes, which decode as empty V-pages). Repeat
    /// reads of any record on the page — from this or any other session —
    /// share the one decoded vector; the decoded data dies when the frame
    /// is evicted.
    pub fn read(&self, cursor: &mut IoCursor, idx: u64) -> Result<Arc<VPage>> {
        let slot = (idx % self.records_per_page) as usize;
        let frame = self
            .pool
            .read_frame(cursor, PageId(self.disk_page_of(idx)))?;
        let rb = self.record_bytes;
        let rpp = self.records_per_page as usize;
        let codec = self.codec;
        // Batch decode: one pass materializes every record of the page into
        // the frame's OnceLock overlay slot, so the whole page pays decode
        // at most once per pool residency regardless of codec.
        let decoded: Arc<Vec<Arc<VPage>>> = frame.overlay(|page| {
            hdov_obs::add(hdov_obs::Counter::CodecDecodes, rpp as u64);
            let mut v = Vec::with_capacity(rpp);
            for s in 0..rpp {
                v.push(Arc::new(codec.decode_record(&page[s * rb..(s + 1) * rb])?));
            }
            Ok(v)
        })?;
        Ok(Arc::clone(&decoded[slot]))
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The backing pool.
    pub fn pool(&self) -> &SharedCachedFile {
        &self.pool
    }

    fn fork(&self) -> Self {
        SharedVPageFile {
            pool: self.pool.fork(),
            records: self.records,
            record_bytes: self.record_bytes,
            records_per_page: self.records_per_page,
            codec: self.codec,
        }
    }
}

/// Per-session query state: disk-head cursors for every file plus the
/// flipped-in V-page-index segment. Cheap to create; one per walkthrough
/// session (or per thread).
#[derive(Debug, Clone, Default)]
pub struct SessionCtx {
    /// Node-file head.
    pub node_cur: IoCursor,
    /// Internal-LoD-file head.
    pub internal_cur: IoCursor,
    /// Object-model-file head.
    pub model_cur: IoCursor,
    /// V-page-index-file head.
    pub index_cur: IoCursor,
    /// V-page-file head.
    pub vpage_cur: IoCursor,
    current_cell: Option<CellId>,
    /// Dense segment (vertical): pointer per node, [`NIL`] = hidden.
    seg_dense: Vec<u64>,
    /// Sparse segment (indexed-vertical): `(ordinal, pointer)` ascending.
    seg_sparse: Vec<(u32, u64)>,
    /// Reusable staging buffer for the indexed-vertical flip (segment bytes
    /// straddle page boundaries).
    seg_bytes: Vec<u8>,
    /// Reusable page-id list for [`SharedVStore::prefetch_cell`].
    prefetch_pages: Vec<u64>,
}

impl SessionCtx {
    /// A fresh session: no head-position memory, no flipped segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cell last entered.
    pub fn current_cell(&self) -> Option<CellId> {
        self.current_cell
    }
}

/// A frozen [`VisibilityStore`]: same on-disk layout, all per-session state
/// externalized into [`SessionCtx`].
pub enum SharedVStore {
    /// §4.1 node-major layout.
    Horizontal(SharedHorizontal),
    /// §4.2 dense per-cell segments + clustered V-pages.
    Vertical(SharedVertical),
    /// §4.3 sparse per-cell segments.
    IndexedVertical(SharedIndexedVertical),
}

/// Frozen horizontal store.
pub struct SharedHorizontal {
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
}

/// Frozen vertical store.
pub struct SharedVertical {
    pub(crate) index: SharedCachedFile,
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
    pub(crate) seg_pages: u64,
}

/// Frozen indexed-vertical store.
pub struct SharedIndexedVertical {
    pub(crate) index: SharedCachedFile,
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
    /// Per-cell `(start_byte, record_count)` directory.
    pub(crate) dir: Arc<Vec<(u64, u32)>>,
}

impl SharedVStore {
    /// The scheme this store implements.
    pub fn scheme(&self) -> StorageScheme {
        match self {
            SharedVStore::Horizontal(_) => StorageScheme::Horizontal,
            SharedVStore::Vertical(_) => StorageScheme::Vertical,
            SharedVStore::IndexedVertical(_) => StorageScheme::IndexedVertical,
        }
    }

    /// Number of cells the store was built for.
    pub fn cell_count(&self) -> u32 {
        match self {
            SharedVStore::Horizontal(s) => s.cells,
            SharedVStore::Vertical(s) => s.cells,
            SharedVStore::IndexedVertical(s) => s.cells,
        }
    }

    /// Segment flip for `ctx` into `cell` — charged to the session's index
    /// cursor; a no-op when the session is already in `cell`.
    pub fn enter_cell(&self, ctx: &mut SessionCtx, cell: CellId) -> Result<()> {
        assert!(cell < self.cell_count(), "cell {cell} out of range");
        if ctx.current_cell == Some(cell) {
            return Ok(());
        }
        // A failed flip must not leave the old cell's tag over a partially
        // overwritten segment (the next same-cell query would no-op on
        // corrupt state): tag only after the flip fully succeeds.
        ctx.current_cell = None;
        match self {
            SharedVStore::Horizontal(_) => {}
            SharedVStore::Vertical(s) => {
                // Parse straight out of the pooled frames into the
                // session's reused segment buffer: no scratch page, no
                // fresh Vec at steady state.
                ctx.seg_dense.clear();
                ctx.seg_dense.reserve(s.n_nodes as usize);
                let first = cell as u64 * s.seg_pages;
                for i in 0..s.seg_pages {
                    let frame = s.index.read_frame(&mut ctx.index_cur, PageId(first + i))?;
                    let mut r = ByteReader::new(frame.bytes());
                    for _ in 0..PAGE_SIZE / 8 {
                        if ctx.seg_dense.len() == s.n_nodes as usize {
                            break;
                        }
                        ctx.seg_dense.push(r.get_u64()?);
                    }
                }
            }
            SharedVStore::IndexedVertical(s) => {
                const REC_BYTES: usize = 12;
                let (start_byte, count) = s.dir[cell as usize];
                let seg_bytes = count as usize * REC_BYTES;
                ctx.seg_sparse.clear();
                if seg_bytes > 0 {
                    // Records straddle page boundaries, so stage the raw
                    // bytes in the session's reused buffer.
                    let first_page = start_byte / PAGE_SIZE as u64;
                    let last_page = (start_byte + seg_bytes as u64 - 1) / PAGE_SIZE as u64;
                    ctx.seg_bytes.clear();
                    ctx.seg_bytes
                        .reserve(((last_page - first_page + 1) as usize) * PAGE_SIZE);
                    ctx.seg_sparse.reserve(count as usize);
                    for p in first_page..=last_page {
                        let frame = s.index.read_frame(&mut ctx.index_cur, PageId(p))?;
                        ctx.seg_bytes.extend_from_slice(frame.bytes());
                    }
                    let off = (start_byte - first_page * PAGE_SIZE as u64) as usize;
                    let mut r = ByteReader::new(&ctx.seg_bytes[off..off + seg_bytes]);
                    for _ in 0..count {
                        let ordinal = r.get_u32()?;
                        let ptr = r.get_u64()?;
                        ctx.seg_sparse.push((ordinal, ptr));
                    }
                }
            }
        }
        ctx.current_cell = Some(cell);
        Ok(())
    }

    /// Fetches the V-page of `ordinal` in the session's current cell (same
    /// `Ok(None)` semantics as [`VisibilityStore::fetch`]). The V-page is
    /// borrowed from the pooled frame's decoded overlay — no per-fetch
    /// decode or copy once the frame is warm.
    pub fn fetch(&self, ctx: &mut SessionCtx, ordinal: u32) -> Result<Option<Arc<VPage>>> {
        let cell = ctx.current_cell.expect("enter_cell before fetch");
        match self {
            SharedVStore::Horizontal(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                let record = ordinal as u64 * s.cells as u64 + cell as u64;
                Ok(Some(s.vpages.read(&mut ctx.vpage_cur, record)?))
            }
            SharedVStore::Vertical(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                match ctx.seg_dense[ordinal as usize] {
                    NIL => Ok(None),
                    ptr => Ok(Some(s.vpages.read(&mut ctx.vpage_cur, ptr)?)),
                }
            }
            SharedVStore::IndexedVertical(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                match ctx.seg_sparse.binary_search_by_key(&ordinal, |&(o, _)| o) {
                    Err(_) => Ok(None),
                    Ok(i) => {
                        let ptr = ctx.seg_sparse[i].1;
                        Ok(Some(s.vpages.read(&mut ctx.vpage_cur, ptr)?))
                    }
                }
            }
        }
    }

    /// Batch-reads the current cell's V-pages: the distinct disk pages
    /// holding them, ascending (one sequential run), so subsequent fetches
    /// are pool hits. Charged to the session's V-page cursor. Returns the
    /// number of disk pages touched.
    ///
    /// The horizontal scheme interleaves every cell's V-pages node-major, so
    /// there is no per-cell run to batch: this is a no-op returning 0 (the
    /// paper's §4.1 scatter penalty, unchanged).
    pub fn prefetch_cell(&self, ctx: &mut SessionCtx) -> Result<u64> {
        let _prefetch = hdov_obs::span(Phase::Prefetch);
        let vpages = match self {
            SharedVStore::Horizontal(_) => return Ok(0),
            SharedVStore::Vertical(s) => &s.vpages,
            SharedVStore::IndexedVertical(s) => &s.vpages,
        };
        assert!(
            ctx.current_cell.is_some(),
            "enter_cell before prefetch_cell"
        );
        ctx.prefetch_pages.clear();
        match self {
            SharedVStore::Horizontal(_) => unreachable!(),
            SharedVStore::Vertical(_) => ctx.prefetch_pages.extend(
                ctx.seg_dense
                    .iter()
                    .filter(|&&p| p != NIL)
                    .map(|&p| vpages.disk_page_of(p)),
            ),
            SharedVStore::IndexedVertical(_) => ctx
                .prefetch_pages
                .extend(ctx.seg_sparse.iter().map(|&(_, p)| vpages.disk_page_of(p))),
        };
        ctx.prefetch_pages.sort_unstable();
        ctx.prefetch_pages.dedup();
        // Speculative warm-up must not displace genuinely hot recency
        // state, so resident pages are probed without promotion; misses
        // charge and install exactly like a read. The sorted page list is
        // coalesced into maximal consecutive runs, each warmed through one
        // vectored request — on file backends a run costs at most one
        // physical read (`pread`) or one `madvise(WILLNEED)`.
        let mut i = 0usize;
        while i < ctx.prefetch_pages.len() {
            let first = ctx.prefetch_pages[i];
            let mut j = i + 1;
            while j < ctx.prefetch_pages.len() && ctx.prefetch_pages[j] == first + (j - i) as u64 {
                j += 1;
            }
            vpages
                .pool
                .warm_run(&mut ctx.vpage_cur, PageId(first), (j - i) as u64)?;
            i = j;
        }
        Ok(ctx.prefetch_pages.len() as u64)
    }

    /// The store's V-page file (every layout clusters its V-pages in one).
    pub fn vpages(&self) -> &SharedVPageFile {
        match self {
            SharedVStore::Horizontal(s) => &s.vpages,
            SharedVStore::Vertical(s) => &s.vpages,
            SharedVStore::IndexedVertical(s) => &s.vpages,
        }
    }

    /// `(hits, misses)` summed over the store's pools.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = (0, 0);
        let mut add = |(a, b): (u64, u64)| {
            h += a;
            m += b;
        };
        match self {
            SharedVStore::Horizontal(s) => add(s.vpages.pool.hit_stats()),
            SharedVStore::Vertical(s) => {
                add(s.index.hit_stats());
                add(s.vpages.pool.hit_stats());
            }
            SharedVStore::IndexedVertical(s) => {
                add(s.index.hit_stats());
                add(s.vpages.pool.hit_stats());
            }
        }
        (h, m)
    }

    fn fork(&self) -> Self {
        match self {
            SharedVStore::Horizontal(s) => SharedVStore::Horizontal(SharedHorizontal {
                vpages: s.vpages.fork(),
                cells: s.cells,
                n_nodes: s.n_nodes,
            }),
            SharedVStore::Vertical(s) => SharedVStore::Vertical(SharedVertical {
                index: s.index.fork(),
                vpages: s.vpages.fork(),
                cells: s.cells,
                n_nodes: s.n_nodes,
                seg_pages: s.seg_pages,
            }),
            SharedVStore::IndexedVertical(s) => {
                SharedVStore::IndexedVertical(SharedIndexedVertical {
                    index: s.index.fork(),
                    vpages: s.vpages.fork(),
                    cells: s.cells,
                    n_nodes: s.n_nodes,
                    dir: Arc::clone(&s.dir),
                })
            }
        }
    }
}

/// The view-invariant tree, frozen: node pages and internal-LoD models
/// behind shared pools.
pub struct SharedTree {
    nodes: SharedCachedFile,
    internal_pool: SharedCachedFile,
    internal_store: Arc<ModelStore>,
    n_nodes: u32,
    fanout: usize,
    heuristic: TerminationHeuristic,
    entry_counts: Arc<Vec<u16>>,
    leaf_ordinals: Arc<Vec<u32>>,
    leaf_objects: Arc<Vec<Vec<u64>>>,
}

impl SharedTree {
    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n_nodes
    }

    /// Fan-out cap `M`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The configured termination heuristic.
    pub fn heuristic(&self) -> TerminationHeuristic {
        self.heuristic
    }

    /// The root ordinal (0: DFS preorder).
    pub fn root_ordinal(&self) -> u32 {
        0
    }

    /// Entry count per node, by ordinal.
    pub fn entry_counts(&self) -> &[u16] {
        &self.entry_counts
    }

    /// Ordinals of all leaf nodes.
    pub fn leaf_ordinals(&self) -> &[u32] {
        &self.leaf_ordinals
    }

    /// Object ids of the `i`-th leaf.
    pub fn leaf_objects(&self, i: usize) -> &[u64] {
        &self.leaf_objects[i]
    }

    /// Total objects indexed by the tree (Σ leaf objects). Only used on the
    /// degraded path, so the per-call walk over the leaf lists is free at
    /// steady state.
    pub fn object_count(&self) -> u64 {
        self.leaf_objects.iter().map(|o| o.len() as u64).sum()
    }

    /// The internal-LoD store (key = node ordinal).
    pub fn internal_store(&self) -> &ModelStore {
        &self.internal_store
    }

    /// Reads node `ordinal`, charging any pool miss to `cursor`.
    ///
    /// Zero-copy: the node comes from the pooled frame's decoded overlay —
    /// it is decoded at most once per pool residency (across *all*
    /// sessions), and every later read clones the shared `Arc`.
    pub fn read_node(
        &self,
        cursor: &mut IoCursor,
        ordinal: u32,
    ) -> Result<Arc<crate::node::HdovNode>> {
        let frame = self.nodes.read_frame(cursor, PageId(ordinal as u64))?;
        frame.overlay(crate::node::HdovNode::decode)
    }

    /// Fetches node `ordinal`'s internal LoD at `level`, charging `cursor`.
    ///
    /// Same page sequence (and therefore identical simulated charging) as
    /// [`ModelStore::fetch`], but through the frame API: pool hits cost no
    /// memcpy and the loop allocates nothing.
    pub fn fetch_internal_lod(
        &self,
        cursor: &mut IoCursor,
        ordinal: u32,
        level: usize,
    ) -> Result<ModelHandle> {
        let h = self.internal_store.handle(ordinal as u64, level);
        for i in 0..h.pages as u64 {
            self.internal_pool
                .read_frame(cursor, PageId(h.first_page.0 + i))?;
        }
        Ok(h)
    }

    fn fork(&self) -> Self {
        SharedTree {
            nodes: self.nodes.fork(),
            internal_pool: self.internal_pool.fork(),
            internal_store: Arc::clone(&self.internal_store),
            n_nodes: self.n_nodes,
            fanout: self.fanout,
            heuristic: self.heuristic,
            entry_counts: Arc::clone(&self.entry_counts),
            leaf_ordinals: Arc::clone(&self.leaf_ordinals),
            leaf_objects: Arc::clone(&self.leaf_objects),
        }
    }
}

/// The object-model bank, frozen.
pub struct SharedModels {
    store: Arc<ModelStore>,
    pool: SharedCachedFile,
}

impl SharedModels {
    /// The model directory.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The model-file pool.
    pub fn pool(&self) -> &SharedCachedFile {
        &self.pool
    }

    /// Fetches (charges the page reads for) `(key, level)` — the zero-copy
    /// counterpart of [`ModelStore::fetch`]: the identical page sequence is
    /// charged to `cursor`, but pool hits hand back pooled frames instead
    /// of copying into a scratch page, and the loop allocates nothing.
    pub fn fetch(&self, cursor: &mut IoCursor, key: u64, level: usize) -> Result<ModelHandle> {
        let h = self.store.handle(key, level);
        for i in 0..h.pages as u64 {
            self.pool.read_frame(cursor, PageId(h.first_page.0 + i))?;
        }
        Ok(h)
    }
}

/// A complete frozen deployment: one immutable HDoV-tree that any number of
/// concurrent sessions can query through their own [`SessionCtx`].
pub struct SharedEnvironment {
    tree: SharedTree,
    vstore: SharedVStore,
    models: SharedModels,
    grid: Arc<CellGrid>,
    table: Arc<DovTable>,
    scheme: StorageScheme,
}

impl SharedEnvironment {
    pub(crate) fn from_parts(
        tree: HdovTree,
        vstore: Box<dyn VisibilityStore>,
        objects: ObjectModels,
        grid: Arc<CellGrid>,
        table: Arc<DovTable>,
        scheme: StorageScheme,
        pool: PoolConfig,
    ) -> Self {
        let parts = tree.into_parts();
        let node_model = parts.node_disk.model();
        let internal_model = parts.internal_disk.model();
        let mk_pool = |file: hdov_storage::StoreFile, model| {
            SharedCachedFile::with_overlay(
                file.into_frozen(),
                model,
                pool.capacity_pages,
                pool.shards,
                pool.decode_overlay,
            )
            .with_retry(pool.retry)
            .with_replicas(pool.replicas)
        };
        let tree = SharedTree {
            nodes: mk_pool(parts.node_disk.into_inner(), node_model),
            internal_pool: mk_pool(parts.internal_disk.into_inner(), internal_model),
            internal_store: Arc::new(parts.internal_store),
            n_nodes: parts.n_nodes,
            fanout: parts.fanout,
            heuristic: parts.heuristic,
            entry_counts: Arc::new(parts.entry_counts),
            leaf_ordinals: Arc::new(parts.leaf_ordinals),
            leaf_objects: Arc::new(parts.leaf_objects),
        };
        let model_model = objects.disk.model();
        let models = SharedModels {
            store: Arc::new(objects.store),
            pool: mk_pool(objects.disk.into_inner(), model_model),
        };
        SharedEnvironment {
            tree,
            vstore: vstore.into_shared(pool),
            models,
            grid,
            table,
            scheme,
        }
    }

    /// A new environment with the same frozen data but cold, private pools —
    /// the per-session-pool baseline of the concurrency benchmark.
    pub fn fork_with_private_pools(&self) -> Self {
        SharedEnvironment {
            tree: self.tree.fork(),
            vstore: self.vstore.fork(),
            models: SharedModels {
                store: Arc::clone(&self.models.store),
                pool: self.models.pool.fork(),
            },
            grid: Arc::clone(&self.grid),
            table: Arc::clone(&self.table),
            scheme: self.scheme,
        }
    }

    /// A fresh per-session query context.
    pub fn session(&self) -> SessionCtx {
        SessionCtx::new()
    }

    /// The viewing cell containing (or nearest to) `viewpoint`.
    pub fn cell_of(&self, viewpoint: Vec3) -> CellId {
        self.grid.clamped_cell_of(viewpoint)
    }

    /// Visibility query by cell, with batched V-page prefetch.
    pub fn query_cell(
        &self,
        ctx: &mut SessionCtx,
        cell: CellId,
        eta: f64,
    ) -> Result<(QueryResult, SearchStats)> {
        search_shared(self, ctx, cell, eta, None, true)
    }

    /// Delta query for walkthroughs (shared-path counterpart of
    /// [`HdovEnvironment::query_delta`](crate::HdovEnvironment::query_delta)).
    pub fn query_delta(
        &self,
        ctx: &mut SessionCtx,
        viewpoint: Vec3,
        eta: f64,
        delta: &mut DeltaSearch,
    ) -> Result<(QueryResult, SearchStats, DeltaSummary)> {
        let cell = self.cell_of(viewpoint);
        let skip = delta.skip_map();
        let (result, stats) = search_shared(self, ctx, cell, eta, Some(&skip), true)?;
        let summary = delta.apply(&result);
        Ok((result, stats, summary))
    }

    /// [`query_delta`](Self::query_delta) writing into a reusable
    /// [`SearchScratch`]: the result stays in `scratch` (read it via
    /// [`SearchScratch::result`]), so a walkthrough session reuses one
    /// buffer across every frame.
    pub fn query_delta_into(
        &self,
        ctx: &mut SessionCtx,
        scratch: &mut SearchScratch,
        viewpoint: Vec3,
        eta: f64,
        delta: &mut DeltaSearch,
    ) -> Result<(SearchStats, DeltaSummary)> {
        let cell = self.cell_of(viewpoint);
        let skip = delta.skip_map();
        let stats = search_shared_into(self, ctx, scratch, cell, eta, Some(&skip), true)?;
        let summary = delta.apply(scratch.result());
        Ok((stats, summary))
    }

    /// [`query_cell`](Self::query_cell) under a [`QueryBudget`] — see
    /// [`search_shared_budgeted`].
    pub fn query_cell_budgeted(
        &self,
        ctx: &mut SessionCtx,
        cell: CellId,
        eta: f64,
        budget: QueryBudget,
    ) -> Result<(QueryResult, SearchStats)> {
        search_shared_budgeted(self, ctx, cell, eta, None, true, budget)
    }

    /// [`query_delta_into`](Self::query_delta_into) under a [`QueryBudget`]:
    /// the per-frame serving path of an overloaded `SessionServer` — a frame
    /// that exhausts its budget still returns a full-coverage (coarser)
    /// answer and updates the resident set with it.
    #[allow(clippy::too_many_arguments)]
    pub fn query_delta_into_budgeted(
        &self,
        ctx: &mut SessionCtx,
        scratch: &mut SearchScratch,
        viewpoint: Vec3,
        eta: f64,
        delta: &mut DeltaSearch,
        budget: QueryBudget,
    ) -> Result<(SearchStats, DeltaSummary)> {
        let cell = self.cell_of(viewpoint);
        let skip = delta.skip_map();
        let stats =
            search_shared_into_budgeted(self, ctx, scratch, cell, eta, Some(&skip), true, budget)?;
        let summary = delta.apply(scratch.result());
        Ok((stats, summary))
    }

    /// Warms the pools for `cell`: segment flip plus batched V-page read,
    /// charged to `ctx`'s cursors (use a scratch context to keep prefetch
    /// cost out of a session's search time). Returns disk pages touched.
    pub fn prefetch_cell(&self, ctx: &mut SessionCtx, cell: CellId) -> Result<u64> {
        self.vstore.enter_cell(ctx, cell)?;
        self.vstore.prefetch_cell(ctx)
    }

    /// The frozen tree.
    pub fn tree(&self) -> &SharedTree {
        &self.tree
    }

    /// The frozen visibility store.
    pub fn vstore(&self) -> &SharedVStore {
        &self.vstore
    }

    /// The frozen model bank.
    pub fn models(&self) -> &SharedModels {
        &self.models
    }

    /// The cell grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// The ground-truth DoV table.
    pub fn dov_table(&self) -> &DovTable {
        &self.table
    }

    /// The active storage scheme.
    pub fn scheme(&self) -> StorageScheme {
        self.scheme
    }

    /// Arms seeded fault injection on every pool of the environment (chaos
    /// testing). Per pool the *first* arming wins; frames already resident
    /// stay valid because pool hits never consult the injector. Returns the
    /// per-file injectors — nodes, internal LoDs, object models, then the
    /// visibility store's files — for inspection and
    /// [`disarming`](SharedFaultyFile::disarm).
    pub fn arm_faults(&self, plan: &FaultPlan) -> Vec<Arc<SharedFaultyFile>> {
        let mut armed = Vec::with_capacity(6);
        self.for_each_pool(|pool| armed.push(pool.arm_faults(plan)));
        armed
    }

    /// Arms seeded fault injection on replica `replica` of every pool
    /// (chaos testing of the failover path; `replica` must be within every
    /// pool's replica count — see [`PoolConfig::replicas`]). First arming
    /// per slot wins, as with [`arm_faults`](Self::arm_faults). Returns the
    /// injectors in the same fixed pool order.
    pub fn arm_replica_faults(
        &self,
        replica: usize,
        plan: &FaultPlan,
    ) -> Vec<Arc<SharedFaultyFile>> {
        let mut armed = Vec::with_capacity(6);
        self.for_each_pool(|pool| armed.push(pool.arm_replica_faults(replica, plan)));
        armed
    }

    /// Applies `f` to every pool of the environment in a fixed order:
    /// nodes, internal LoDs, object models, then the visibility store's
    /// files (index before V-pages where both exist).
    pub fn for_each_pool(&self, mut f: impl FnMut(&SharedCachedFile)) {
        f(&self.tree.nodes);
        f(&self.tree.internal_pool);
        f(&self.models.pool);
        match &self.vstore {
            SharedVStore::Horizontal(s) => f(&s.vpages.pool),
            SharedVStore::Vertical(s) => {
                f(&s.index);
                f(&s.vpages.pool);
            }
            SharedVStore::IndexedVertical(s) => {
                f(&s.index);
                f(&s.vpages.pool);
            }
        }
    }

    /// Replica-set health merged over every pool: failovers served, pages
    /// repaired, and pages still quarantined. All-zero (`is_clean`) in
    /// fault-free runs.
    pub fn storage_health(&self) -> ReplicaHealth {
        let mut health = ReplicaHealth::default();
        self.for_each_pool(|pool| health.merge(&pool.replica_set().status()));
        health
    }

    /// Runs one full scrub sweep over every pool's replicas, repairing
    /// verified-bad file pages in place (see [`Scrubber`]). Returns the
    /// merged report; fault-free stores scrub clean with zero repairs.
    pub fn scrub(&self, scrubber: &Scrubber) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let mut failed = None;
        self.for_each_pool(|pool| {
            if failed.is_some() {
                return;
            }
            match scrubber.scrub_pool(pool) {
                Ok(r) => report.merge(r),
                Err(e) => failed = Some(e),
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// `(hits, misses)` summed over every pool of the environment.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = self.vstore.pool_hit_stats();
        for pool in [
            &self.tree.nodes,
            &self.tree.internal_pool,
            &self.models.pool,
        ] {
            let (a, b) = pool.hit_stats();
            h += a;
            m += b;
        }
        (h, m)
    }

    /// Aggregate pool hit rate in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        let (h, m) = self.pool_hit_stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// Reusable per-session search state: the result buffer survives across
/// queries, so a steady-state [`search_shared_into`] call over warm pools
/// performs **no heap allocation** (pinned by the `alloc_free` integration
/// test). One per walkthrough session, alongside its [`SessionCtx`].
#[derive(Debug, Default)]
pub struct SearchScratch {
    result: QueryResult,
}

impl SearchScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent query's answer set (cleared at the start of each
    /// query).
    pub fn result(&self) -> &QueryResult {
        &self.result
    }

    /// Moves the result out, leaving empty buffers (the capacity goes with
    /// it — keep the scratch and use [`result`](Self::result) to stay
    /// allocation-free).
    pub fn take_result(&mut self) -> QueryResult {
        std::mem::take(&mut self.result)
    }
}

/// The threshold visibility query of Fig. 3 against a frozen environment —
/// the `&`-shareable counterpart of [`search`](crate::search::search), with
/// optional batched V-page prefetch (`prefetch`).
///
/// All simulated I/O is charged to `ctx`'s cursors; the returned
/// [`SearchStats`] cover this query only.
///
/// Convenience wrapper over [`search_shared_into`] that returns an owned
/// result; loops that care about allocations should hold a
/// [`SearchScratch`] and call `search_shared_into` directly.
pub fn search_shared(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    cell: CellId,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    prefetch: bool,
) -> Result<(QueryResult, SearchStats)> {
    let mut scratch = SearchScratch::new();
    let stats = search_shared_into(env, ctx, &mut scratch, cell, eta, skip, prefetch)?;
    Ok((scratch.take_result(), stats))
}

/// [`search_shared`] under a [`QueryBudget`] — the concurrent counterpart of
/// [`search_budgeted`](crate::search::search_budgeted): when the budget
/// exhausts mid-descent, every remaining subtree is served as its internal
/// LoD and recorded as a `BudgetExhausted` degrade event. An unlimited
/// budget is byte-identical to [`search_shared`].
pub fn search_shared_budgeted(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    cell: CellId,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    prefetch: bool,
    budget: QueryBudget,
) -> Result<(QueryResult, SearchStats)> {
    let mut scratch = SearchScratch::new();
    let stats =
        search_shared_into_budgeted(env, ctx, &mut scratch, cell, eta, skip, prefetch, budget)?;
    Ok((scratch.take_result(), stats))
}

/// [`search_shared`] writing its answer into `scratch` instead of a fresh
/// [`QueryResult`] — the zero-allocation hot path: with warm pools and a
/// same-cell session, the whole query touches no allocator (overlay `Arc`
/// clones on every node/V-page, reused segment and result buffers).
pub fn search_shared_into(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    scratch: &mut SearchScratch,
    cell: CellId,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    prefetch: bool,
) -> Result<SearchStats> {
    search_shared_into_budgeted(
        env,
        ctx,
        scratch,
        cell,
        eta,
        skip,
        prefetch,
        QueryBudget::UNLIMITED,
    )
}

/// Cumulative simulated I/O charge across a session's five cursors, for
/// budget accounting. Pure accessor reads — charges nothing.
fn io_elapsed_us_shared(ctx: &SessionCtx) -> f64 {
    ctx.node_cur.stats().elapsed_us
        + ctx.internal_cur.stats().elapsed_us
        + ctx.model_cur.stats().elapsed_us
        + ctx.index_cur.stats().elapsed_us
        + ctx.vpage_cur.stats().elapsed_us
}

/// [`search_shared_into`] under a [`QueryBudget`] (see
/// [`search_shared_budgeted`]). The budget covers everything charged to the
/// session's cursors from the call on — including the segment flip and the
/// batched V-page prefetch, which is what makes a saturated cell's prefetch
/// count against its own deadline.
#[allow(clippy::too_many_arguments)]
pub fn search_shared_into_budgeted(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    scratch: &mut SearchScratch,
    cell: CellId,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    prefetch: bool,
    budget: QueryBudget,
) -> Result<SearchStats> {
    assert!(eta >= 0.0, "eta must be non-negative");
    let node0 = ctx.node_cur.stats();
    let internal0 = ctx.internal_cur.stats();
    let model0 = ctx.model_cur.stats();
    let index0 = ctx.index_cur.stats();
    let vpage0 = ctx.vpage_cur.stats();
    let bclock = BudgetClock::start(
        budget,
        node0.elapsed_us
            + internal0.elapsed_us
            + model0.elapsed_us
            + index0.elapsed_us
            + vpage0.elapsed_us,
    );

    scratch.result.clear();
    let mut stats = SearchStats::default();
    let attempt = (|| {
        env.vstore.enter_cell(ctx, cell)?;
        if prefetch {
            env.vstore.prefetch_cell(ctx)?;
        }
        let _traversal = hdov_obs::span(Phase::Traversal);
        recurse_shared(
            env,
            ctx,
            env.tree.root_ordinal(),
            eta,
            skip,
            &bclock,
            &mut scratch.result,
            &mut stats,
        )
    })();
    if let Err(e) = attempt {
        // Even the root's own reads failed (or the segment flip did): the
        // last resort of graceful degradation serves the whole scene as the
        // root's internal LoD. Only an unreadable root LoD fails the query.
        scratch.result.clear();
        degrade_to_internal_shared(
            env,
            ctx,
            env.tree.root_ordinal(),
            0.0,
            env.tree.object_count(),
            DegradeCause::ReadError,
            &e.to_string(),
            skip,
            &mut scratch.result,
        )?;
    }

    stats.node_io = ctx.node_cur.stats().since(&node0);
    stats.internal_io = ctx.internal_cur.stats().since(&internal0);
    stats.model_io = ctx.model_cur.stats().since(&model0);
    stats.vstore_io = ctx.index_cur.stats().since(&index0) + ctx.vpage_cur.stats().since(&vpage0);
    crate::search::record_query_obs(&stats, scratch.result.degrade());
    Ok(stats)
}

/// The shared-path counterpart of `search::degrade_to_internal`: serves
/// node `ordinal`'s finest internal LoD in place of its unreadable subtree,
/// records the absorbed `cause`, and propagates the fetch error when even
/// the internal LoD cannot be read (the deepest *readable* ancestor wins).
#[allow(clippy::too_many_arguments)]
fn degrade_to_internal_shared(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    ordinal: u32,
    dov: f32,
    objects_coarse: u64,
    cause: DegradeCause,
    detail: &str,
    skip: Option<&HashMap<ResultKey, usize>>,
    out: &mut QueryResult,
) -> Result<()> {
    let level = select_level(env.tree.internal_store(), ordinal as u64, 1.0);
    let key = ResultKey::Internal(ordinal);
    let cached = skip.and_then(|s| s.get(&key)).is_some_and(|&l| l == level);
    let h = if cached {
        env.tree.internal_store().handle(ordinal as u64, level)
    } else {
        let _lf = hdov_obs::span(Phase::LodFetch);
        env.tree
            .fetch_internal_lod(&mut ctx.internal_cur, ordinal, level)?
    };
    out.push(ResultEntry {
        key,
        level,
        polygons: h.polygons as u64,
        bytes: h.bytes as u64,
        dov,
        cached,
    });
    out.record_degrade(ordinal, objects_coarse, cause, detail);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn recurse_shared(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    ordinal: u32,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    bclock: &BudgetClock,
    out: &mut QueryResult,
    stats: &mut SearchStats,
) -> Result<()> {
    let Some(vpage) = ({
        let _vp = hdov_obs::span(Phase::VPageRead);
        env.vstore.fetch(ctx, ordinal)?
    }) else {
        return Ok(()); // invisible (vertical/indexed prove it for free)
    };
    stats.vpages_fetched += 1;
    if !vpage.any_visible() {
        return Ok(()); // horizontal placeholder for a hidden node
    }
    let node = {
        let _nr = hdov_obs::span(Phase::NodeRead);
        env.tree.read_node(&mut ctx.node_cur, ordinal)?
    };
    stats.nodes_visited += 1;

    for (entry, ve) in node.entries.iter().zip(&vpage.entries) {
        if ve.dov <= 0.0 {
            continue; // line 3: completely hidden branch
        }
        if entry.is_object() {
            // Lines 4–5: leaf entry, Eq. 6.
            let k = (ve.dov as f64 / MAX_DOV).min(1.0);
            let level = select_level(&env.models.store, entry.child, k);
            let key = ResultKey::Object(entry.child);
            let cached = skip.and_then(|s| s.get(&key)).is_some_and(|&l| l == level);
            let h = if cached {
                env.models.store.handle(entry.child, level)
            } else {
                let _lf = hdov_obs::span(Phase::LodFetch);
                env.models.fetch(&mut ctx.model_cur, entry.child, level)?
            };
            out.push(ResultEntry {
                key,
                level,
                polygons: h.polygons as u64,
                bytes: h.bytes as u64,
                dov: ve.dov,
                cached,
            });
        } else if (ve.dov as f64) <= eta
            && terminates_with(
                env.tree.heuristic,
                env.tree.fanout,
                &env.tree.internal_store,
                entry,
                ve,
            )
        {
            // Lines 7–8: barely visible subtree, Eq. 5.
            let k = if eta > 0.0 {
                (ve.dov as f64 / eta).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let child = entry.child_ordinal;
            let level = select_level(env.tree.internal_store(), child as u64, k);
            let key = ResultKey::Internal(child);
            let cached = skip.and_then(|s| s.get(&key)).is_some_and(|&l| l == level);
            let h = if cached {
                env.tree.internal_store().handle(child as u64, level)
            } else {
                let _lf = hdov_obs::span(Phase::LodFetch);
                env.tree
                    .fetch_internal_lod(&mut ctx.internal_cur, child, level)?
            };
            out.push(ResultEntry {
                key,
                level,
                polygons: h.polygons as u64,
                bytes: h.bytes as u64,
                dov: ve.dov,
                cached,
            });
        } else {
            // Budget check, charged nothing itself: once the query's spend
            // reaches its cap, every remaining subtree is served as its
            // internal LoD instead of being descended (DESIGN.md §12). The
            // unlimited path is one branch — no meter reads, no clock.
            if bclock.is_limited()
                && bclock.exhausted(
                    io_elapsed_us_shared(ctx),
                    stats.nodes_visited,
                    stats.vpages_fetched,
                )
            {
                degrade_to_internal_shared(
                    env,
                    ctx,
                    entry.child_ordinal,
                    ve.dov,
                    ve.nvo as u64,
                    DegradeCause::BudgetExhausted,
                    BUDGET_EXHAUSTED_DETAIL,
                    skip,
                    out,
                )?;
                continue;
            }
            // Line 10: descend — absorbing read failures beneath this entry
            // by dropping the subtree's partial answer and serving the
            // child's internal LoD instead.
            let mark = out.mark();
            if let Err(e) =
                recurse_shared(env, ctx, entry.child_ordinal, eta, skip, bclock, out, stats)
            {
                out.rollback(mark);
                degrade_to_internal_shared(
                    env,
                    ctx,
                    entry.child_ordinal,
                    ve.dov,
                    ve.nvo as u64,
                    DegradeCause::ReadError,
                    &e.to_string(),
                    skip,
                    out,
                )?;
            }
        }
    }
    Ok(())
}
