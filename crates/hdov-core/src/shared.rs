//! The concurrent read path: query a built HDoV-tree from many sessions at
//! once.
//!
//! The single-session engine ([`HdovEnvironment`](crate::HdovEnvironment))
//! threads `&mut` from the query down to the simulated disks, so one tree
//! serves one walkthrough at a time. This module freezes a built environment
//! into a [`SharedEnvironment`]: every file becomes an immutable
//! [`SharedCachedFile`] (lock-striped LRU pool + atomic counters), and all
//! per-session mutability — disk-head positions, I/O counters, the flipped-in
//! V-page-index segment — moves into a per-session [`SessionCtx`]. Queries
//! then take `&SharedEnvironment` and any number of threads can search
//! concurrently, sharing pool contents.
//!
//! Two read-path changes relative to the sequential engine:
//!
//! * **Batched V-page reads** — after the segment flip, the distinct V-page
//!   disk pages of the cell are read once, in ascending order (one
//!   sequential run), instead of being pointer-chased mid-recursion
//!   ([`SharedEnvironment::prefetch_cell`]). The horizontal scheme cannot
//!   batch (its layout is node-major, the paper's §4.1 weakness) and skips
//!   this.
//! * **Pool sharing** — V-pages, nodes, and models warmed by one session are
//!   hits for every other session in the same cell neighbourhood.
//!
//! The traversal itself ([`search_shared`]) mirrors
//! [`search`](crate::search::search) decision-for-decision, so a
//! single-session run returns bit-identical result entries.

use crate::build::{HdovTree, TerminationHeuristic};
use crate::delta::{DeltaSearch, DeltaSummary};
use crate::search::{
    select_level, terminates_with, ObjectModels, QueryResult, ResultEntry, ResultKey, SearchStats,
};
use crate::storage::{StorageScheme, VisibilityStore};
use crate::vpage::VPage;
use hdov_geom::solid_angle::MAX_DOV;
use hdov_geom::Vec3;
use hdov_obs::Phase;
use hdov_scene::{ModelHandle, ModelStore};
use hdov_storage::codec::ByteReader;
use hdov_storage::{
    IoCursor, Page, PageId, PagedFile, Result, SharedCachedFile, StorageError, PAGE_SIZE,
};
use hdov_visibility::{CellGrid, CellId, DovTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Nil pointer in a dense V-page-index segment (matches the vertical
/// scheme's on-disk encoding).
const NIL: u64 = u64::MAX;

/// Buffer-pool geometry for a frozen environment.
///
/// Each of the five files (nodes, internal LoDs, object models, V-page
/// index, V-pages) gets its own pool of `capacity_pages` pages striped over
/// `shards` locks, so total pool memory is `5 · capacity_pages · 4 KiB`.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Pages per pool.
    pub capacity_pages: usize,
    /// Lock stripes per pool.
    pub shards: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity_pages: 128,
            shards: 8,
        }
    }
}

/// Adapts a `(pool, cursor)` pair to [`PagedFile`] so read-only consumers
/// written against the sequential API — [`ModelStore::fetch`] in particular —
/// work on the shared path unchanged.
pub struct CursorFile<'a> {
    pool: &'a SharedCachedFile,
    cursor: &'a mut IoCursor,
}

impl<'a> CursorFile<'a> {
    /// Wraps `pool` with per-session state `cursor`.
    pub fn new(pool: &'a SharedCachedFile, cursor: &'a mut IoCursor) -> Self {
        CursorFile { pool, cursor }
    }
}

impl PagedFile for CursorFile<'_> {
    fn read_page(&mut self, id: PageId, out: &mut Page) -> Result<()> {
        self.pool.read_page(self.cursor, id, out)
    }

    fn write_page(&mut self, _id: PageId, _page: &Page) -> Result<()> {
        Err(StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "shared environments are immutable",
        )))
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        Err(StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "shared environments are immutable",
        )))
    }

    fn page_count(&self) -> u64 {
        self.pool.page_count()
    }
}

/// Frozen V-page records behind a shared pool (the `&`-shareable counterpart
/// of the schemes' internal `VPageFile`).
pub struct SharedVPageFile {
    pool: SharedCachedFile,
    records: u64,
    record_bytes: usize,
    records_per_page: u64,
}

impl SharedVPageFile {
    pub(crate) fn new(
        pool: SharedCachedFile,
        records: u64,
        record_bytes: usize,
        records_per_page: u64,
    ) -> Self {
        SharedVPageFile {
            pool,
            records,
            record_bytes,
            records_per_page,
        }
    }

    /// The disk page holding record `idx` (for batched prefetch).
    pub fn disk_page_of(&self, idx: u64) -> u64 {
        idx / self.records_per_page
    }

    /// Reads record `idx`, charging any pool miss to `cursor`.
    pub fn read(&self, cursor: &mut IoCursor, idx: u64) -> Result<VPage> {
        let slot = (idx % self.records_per_page) as usize * self.record_bytes;
        let mut page = Page::zeroed();
        self.pool
            .read_page(cursor, PageId(self.disk_page_of(idx)), &mut page)?;
        VPage::decode(&page.bytes()[slot..slot + self.record_bytes])
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The backing pool.
    pub fn pool(&self) -> &SharedCachedFile {
        &self.pool
    }

    fn fork(&self) -> Self {
        SharedVPageFile {
            pool: self.pool.fork(),
            records: self.records,
            record_bytes: self.record_bytes,
            records_per_page: self.records_per_page,
        }
    }
}

/// Per-session query state: disk-head cursors for every file plus the
/// flipped-in V-page-index segment. Cheap to create; one per walkthrough
/// session (or per thread).
#[derive(Debug, Clone, Default)]
pub struct SessionCtx {
    /// Node-file head.
    pub node_cur: IoCursor,
    /// Internal-LoD-file head.
    pub internal_cur: IoCursor,
    /// Object-model-file head.
    pub model_cur: IoCursor,
    /// V-page-index-file head.
    pub index_cur: IoCursor,
    /// V-page-file head.
    pub vpage_cur: IoCursor,
    current_cell: Option<CellId>,
    /// Dense segment (vertical): pointer per node, [`NIL`] = hidden.
    seg_dense: Vec<u64>,
    /// Sparse segment (indexed-vertical): `(ordinal, pointer)` ascending.
    seg_sparse: Vec<(u32, u64)>,
}

impl SessionCtx {
    /// A fresh session: no head-position memory, no flipped segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cell last entered.
    pub fn current_cell(&self) -> Option<CellId> {
        self.current_cell
    }
}

/// A frozen [`VisibilityStore`]: same on-disk layout, all per-session state
/// externalized into [`SessionCtx`].
pub enum SharedVStore {
    /// §4.1 node-major layout.
    Horizontal(SharedHorizontal),
    /// §4.2 dense per-cell segments + clustered V-pages.
    Vertical(SharedVertical),
    /// §4.3 sparse per-cell segments.
    IndexedVertical(SharedIndexedVertical),
}

/// Frozen horizontal store.
pub struct SharedHorizontal {
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
}

/// Frozen vertical store.
pub struct SharedVertical {
    pub(crate) index: SharedCachedFile,
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
    pub(crate) seg_pages: u64,
}

/// Frozen indexed-vertical store.
pub struct SharedIndexedVertical {
    pub(crate) index: SharedCachedFile,
    pub(crate) vpages: SharedVPageFile,
    pub(crate) cells: u32,
    pub(crate) n_nodes: u32,
    /// Per-cell `(start_byte, record_count)` directory.
    pub(crate) dir: Arc<Vec<(u64, u32)>>,
}

impl SharedVStore {
    /// The scheme this store implements.
    pub fn scheme(&self) -> StorageScheme {
        match self {
            SharedVStore::Horizontal(_) => StorageScheme::Horizontal,
            SharedVStore::Vertical(_) => StorageScheme::Vertical,
            SharedVStore::IndexedVertical(_) => StorageScheme::IndexedVertical,
        }
    }

    /// Number of cells the store was built for.
    pub fn cell_count(&self) -> u32 {
        match self {
            SharedVStore::Horizontal(s) => s.cells,
            SharedVStore::Vertical(s) => s.cells,
            SharedVStore::IndexedVertical(s) => s.cells,
        }
    }

    /// Segment flip for `ctx` into `cell` — charged to the session's index
    /// cursor; a no-op when the session is already in `cell`.
    pub fn enter_cell(&self, ctx: &mut SessionCtx, cell: CellId) -> Result<()> {
        assert!(cell < self.cell_count(), "cell {cell} out of range");
        if ctx.current_cell == Some(cell) {
            return Ok(());
        }
        match self {
            SharedVStore::Horizontal(_) => {}
            SharedVStore::Vertical(s) => {
                let mut segment = Vec::with_capacity(s.n_nodes as usize);
                let first = cell as u64 * s.seg_pages;
                let mut page = Page::zeroed();
                for i in 0..s.seg_pages {
                    s.index
                        .read_page(&mut ctx.index_cur, PageId(first + i), &mut page)?;
                    let mut r = ByteReader::new(page.bytes());
                    for _ in 0..PAGE_SIZE / 8 {
                        if segment.len() == s.n_nodes as usize {
                            break;
                        }
                        segment.push(r.get_u64()?);
                    }
                }
                ctx.seg_dense = segment;
            }
            SharedVStore::IndexedVertical(s) => {
                const REC_BYTES: usize = 12;
                let (start_byte, count) = s.dir[cell as usize];
                let seg_bytes = count as usize * REC_BYTES;
                let mut segment = Vec::with_capacity(count as usize);
                if seg_bytes > 0 {
                    let first_page = start_byte / PAGE_SIZE as u64;
                    let last_page = (start_byte + seg_bytes as u64 - 1) / PAGE_SIZE as u64;
                    let mut bytes =
                        Vec::with_capacity(((last_page - first_page + 1) as usize) * PAGE_SIZE);
                    let mut page = Page::zeroed();
                    for p in first_page..=last_page {
                        s.index
                            .read_page(&mut ctx.index_cur, PageId(p), &mut page)?;
                        bytes.extend_from_slice(page.bytes());
                    }
                    let off = (start_byte - first_page * PAGE_SIZE as u64) as usize;
                    let mut r = ByteReader::new(&bytes[off..off + seg_bytes]);
                    for _ in 0..count {
                        let ordinal = r.get_u32()?;
                        let ptr = r.get_u64()?;
                        segment.push((ordinal, ptr));
                    }
                }
                ctx.seg_sparse = segment;
            }
        }
        ctx.current_cell = Some(cell);
        Ok(())
    }

    /// Fetches the V-page of `ordinal` in the session's current cell (same
    /// `Ok(None)` semantics as [`VisibilityStore::fetch`]).
    pub fn fetch(&self, ctx: &mut SessionCtx, ordinal: u32) -> Result<Option<VPage>> {
        let cell = ctx.current_cell.expect("enter_cell before fetch");
        match self {
            SharedVStore::Horizontal(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                let record = ordinal as u64 * s.cells as u64 + cell as u64;
                Ok(Some(s.vpages.read(&mut ctx.vpage_cur, record)?))
            }
            SharedVStore::Vertical(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                match ctx.seg_dense[ordinal as usize] {
                    NIL => Ok(None),
                    ptr => Ok(Some(s.vpages.read(&mut ctx.vpage_cur, ptr)?)),
                }
            }
            SharedVStore::IndexedVertical(s) => {
                assert!(ordinal < s.n_nodes, "node ordinal out of range");
                match ctx.seg_sparse.binary_search_by_key(&ordinal, |&(o, _)| o) {
                    Err(_) => Ok(None),
                    Ok(i) => {
                        let ptr = ctx.seg_sparse[i].1;
                        Ok(Some(s.vpages.read(&mut ctx.vpage_cur, ptr)?))
                    }
                }
            }
        }
    }

    /// Batch-reads the current cell's V-pages: the distinct disk pages
    /// holding them, ascending (one sequential run), so subsequent fetches
    /// are pool hits. Charged to the session's V-page cursor. Returns the
    /// number of disk pages touched.
    ///
    /// The horizontal scheme interleaves every cell's V-pages node-major, so
    /// there is no per-cell run to batch: this is a no-op returning 0 (the
    /// paper's §4.1 scatter penalty, unchanged).
    pub fn prefetch_cell(&self, ctx: &mut SessionCtx) -> Result<u64> {
        let _prefetch = hdov_obs::span(Phase::Prefetch);
        let vpages = match self {
            SharedVStore::Horizontal(_) => return Ok(0),
            SharedVStore::Vertical(s) => &s.vpages,
            SharedVStore::IndexedVertical(s) => &s.vpages,
        };
        assert!(
            ctx.current_cell.is_some(),
            "enter_cell before prefetch_cell"
        );
        let mut pages: Vec<u64> = match self {
            SharedVStore::Horizontal(_) => unreachable!(),
            SharedVStore::Vertical(_) => ctx
                .seg_dense
                .iter()
                .filter(|&&p| p != NIL)
                .map(|&p| vpages.disk_page_of(p))
                .collect(),
            SharedVStore::IndexedVertical(_) => ctx
                .seg_sparse
                .iter()
                .map(|&(_, p)| vpages.disk_page_of(p))
                .collect(),
        };
        pages.sort_unstable();
        pages.dedup();
        let mut scratch = Page::zeroed();
        for &p in &pages {
            vpages
                .pool
                .read_page(&mut ctx.vpage_cur, PageId(p), &mut scratch)?;
        }
        Ok(pages.len() as u64)
    }

    /// `(hits, misses)` summed over the store's pools.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = (0, 0);
        let mut add = |(a, b): (u64, u64)| {
            h += a;
            m += b;
        };
        match self {
            SharedVStore::Horizontal(s) => add(s.vpages.pool.hit_stats()),
            SharedVStore::Vertical(s) => {
                add(s.index.hit_stats());
                add(s.vpages.pool.hit_stats());
            }
            SharedVStore::IndexedVertical(s) => {
                add(s.index.hit_stats());
                add(s.vpages.pool.hit_stats());
            }
        }
        (h, m)
    }

    fn fork(&self) -> Self {
        match self {
            SharedVStore::Horizontal(s) => SharedVStore::Horizontal(SharedHorizontal {
                vpages: s.vpages.fork(),
                cells: s.cells,
                n_nodes: s.n_nodes,
            }),
            SharedVStore::Vertical(s) => SharedVStore::Vertical(SharedVertical {
                index: s.index.fork(),
                vpages: s.vpages.fork(),
                cells: s.cells,
                n_nodes: s.n_nodes,
                seg_pages: s.seg_pages,
            }),
            SharedVStore::IndexedVertical(s) => {
                SharedVStore::IndexedVertical(SharedIndexedVertical {
                    index: s.index.fork(),
                    vpages: s.vpages.fork(),
                    cells: s.cells,
                    n_nodes: s.n_nodes,
                    dir: Arc::clone(&s.dir),
                })
            }
        }
    }
}

/// The view-invariant tree, frozen: node pages and internal-LoD models
/// behind shared pools.
pub struct SharedTree {
    nodes: SharedCachedFile,
    internal_pool: SharedCachedFile,
    internal_store: Arc<ModelStore>,
    n_nodes: u32,
    fanout: usize,
    heuristic: TerminationHeuristic,
    entry_counts: Arc<Vec<u16>>,
    leaf_ordinals: Arc<Vec<u32>>,
    leaf_objects: Arc<Vec<Vec<u64>>>,
}

impl SharedTree {
    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n_nodes
    }

    /// Fan-out cap `M`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The configured termination heuristic.
    pub fn heuristic(&self) -> TerminationHeuristic {
        self.heuristic
    }

    /// The root ordinal (0: DFS preorder).
    pub fn root_ordinal(&self) -> u32 {
        0
    }

    /// Entry count per node, by ordinal.
    pub fn entry_counts(&self) -> &[u16] {
        &self.entry_counts
    }

    /// Ordinals of all leaf nodes.
    pub fn leaf_ordinals(&self) -> &[u32] {
        &self.leaf_ordinals
    }

    /// Object ids of the `i`-th leaf.
    pub fn leaf_objects(&self, i: usize) -> &[u64] {
        &self.leaf_objects[i]
    }

    /// The internal-LoD store (key = node ordinal).
    pub fn internal_store(&self) -> &ModelStore {
        &self.internal_store
    }

    /// Reads node `ordinal`, charging any pool miss to `cursor`.
    pub fn read_node(&self, cursor: &mut IoCursor, ordinal: u32) -> Result<crate::node::HdovNode> {
        let mut page = Page::zeroed();
        self.nodes
            .read_page(cursor, PageId(ordinal as u64), &mut page)?;
        crate::node::HdovNode::decode(&page)
    }

    /// Fetches node `ordinal`'s internal LoD at `level`, charging `cursor`.
    pub fn fetch_internal_lod(
        &self,
        cursor: &mut IoCursor,
        ordinal: u32,
        level: usize,
    ) -> Result<ModelHandle> {
        self.internal_store.fetch(
            &mut CursorFile::new(&self.internal_pool, cursor),
            ordinal as u64,
            level,
        )
    }

    fn fork(&self) -> Self {
        SharedTree {
            nodes: self.nodes.fork(),
            internal_pool: self.internal_pool.fork(),
            internal_store: Arc::clone(&self.internal_store),
            n_nodes: self.n_nodes,
            fanout: self.fanout,
            heuristic: self.heuristic,
            entry_counts: Arc::clone(&self.entry_counts),
            leaf_ordinals: Arc::clone(&self.leaf_ordinals),
            leaf_objects: Arc::clone(&self.leaf_objects),
        }
    }
}

/// The object-model bank, frozen.
pub struct SharedModels {
    store: Arc<ModelStore>,
    pool: SharedCachedFile,
}

impl SharedModels {
    /// The model directory.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The model-file pool.
    pub fn pool(&self) -> &SharedCachedFile {
        &self.pool
    }
}

/// A complete frozen deployment: one immutable HDoV-tree that any number of
/// concurrent sessions can query through their own [`SessionCtx`].
pub struct SharedEnvironment {
    tree: SharedTree,
    vstore: SharedVStore,
    models: SharedModels,
    grid: Arc<CellGrid>,
    table: Arc<DovTable>,
    scheme: StorageScheme,
}

impl SharedEnvironment {
    pub(crate) fn from_parts(
        tree: HdovTree,
        vstore: Box<dyn VisibilityStore>,
        objects: ObjectModels,
        grid: Arc<CellGrid>,
        table: Arc<DovTable>,
        scheme: StorageScheme,
        pool: PoolConfig,
    ) -> Self {
        let parts = tree.into_parts();
        let node_model = parts.node_disk.model();
        let internal_model = parts.internal_disk.model();
        let tree = SharedTree {
            nodes: SharedCachedFile::from_mem(
                parts.node_disk.into_inner(),
                node_model,
                pool.capacity_pages,
                pool.shards,
            ),
            internal_pool: SharedCachedFile::from_mem(
                parts.internal_disk.into_inner(),
                internal_model,
                pool.capacity_pages,
                pool.shards,
            ),
            internal_store: Arc::new(parts.internal_store),
            n_nodes: parts.n_nodes,
            fanout: parts.fanout,
            heuristic: parts.heuristic,
            entry_counts: Arc::new(parts.entry_counts),
            leaf_ordinals: Arc::new(parts.leaf_ordinals),
            leaf_objects: Arc::new(parts.leaf_objects),
        };
        let model_model = objects.disk.model();
        let models = SharedModels {
            store: Arc::new(objects.store),
            pool: SharedCachedFile::from_mem(
                objects.disk.into_inner(),
                model_model,
                pool.capacity_pages,
                pool.shards,
            ),
        };
        SharedEnvironment {
            tree,
            vstore: vstore.into_shared(pool.capacity_pages, pool.shards),
            models,
            grid,
            table,
            scheme,
        }
    }

    /// A new environment with the same frozen data but cold, private pools —
    /// the per-session-pool baseline of the concurrency benchmark.
    pub fn fork_with_private_pools(&self) -> Self {
        SharedEnvironment {
            tree: self.tree.fork(),
            vstore: self.vstore.fork(),
            models: SharedModels {
                store: Arc::clone(&self.models.store),
                pool: self.models.pool.fork(),
            },
            grid: Arc::clone(&self.grid),
            table: Arc::clone(&self.table),
            scheme: self.scheme,
        }
    }

    /// A fresh per-session query context.
    pub fn session(&self) -> SessionCtx {
        SessionCtx::new()
    }

    /// The viewing cell containing (or nearest to) `viewpoint`.
    pub fn cell_of(&self, viewpoint: Vec3) -> CellId {
        self.grid.clamped_cell_of(viewpoint)
    }

    /// Visibility query by cell, with batched V-page prefetch.
    pub fn query_cell(
        &self,
        ctx: &mut SessionCtx,
        cell: CellId,
        eta: f64,
    ) -> Result<(QueryResult, SearchStats)> {
        search_shared(self, ctx, cell, eta, None, true)
    }

    /// Delta query for walkthroughs (shared-path counterpart of
    /// [`HdovEnvironment::query_delta`](crate::HdovEnvironment::query_delta)).
    pub fn query_delta(
        &self,
        ctx: &mut SessionCtx,
        viewpoint: Vec3,
        eta: f64,
        delta: &mut DeltaSearch,
    ) -> Result<(QueryResult, SearchStats, DeltaSummary)> {
        let cell = self.cell_of(viewpoint);
        let skip = delta.skip_map();
        let (result, stats) = search_shared(self, ctx, cell, eta, Some(&skip), true)?;
        let summary = delta.apply(&result);
        Ok((result, stats, summary))
    }

    /// Warms the pools for `cell`: segment flip plus batched V-page read,
    /// charged to `ctx`'s cursors (use a scratch context to keep prefetch
    /// cost out of a session's search time). Returns disk pages touched.
    pub fn prefetch_cell(&self, ctx: &mut SessionCtx, cell: CellId) -> Result<u64> {
        self.vstore.enter_cell(ctx, cell)?;
        self.vstore.prefetch_cell(ctx)
    }

    /// The frozen tree.
    pub fn tree(&self) -> &SharedTree {
        &self.tree
    }

    /// The frozen visibility store.
    pub fn vstore(&self) -> &SharedVStore {
        &self.vstore
    }

    /// The frozen model bank.
    pub fn models(&self) -> &SharedModels {
        &self.models
    }

    /// The cell grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// The ground-truth DoV table.
    pub fn dov_table(&self) -> &DovTable {
        &self.table
    }

    /// The active storage scheme.
    pub fn scheme(&self) -> StorageScheme {
        self.scheme
    }

    /// `(hits, misses)` summed over every pool of the environment.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = self.vstore.pool_hit_stats();
        for pool in [
            &self.tree.nodes,
            &self.tree.internal_pool,
            &self.models.pool,
        ] {
            let (a, b) = pool.hit_stats();
            h += a;
            m += b;
        }
        (h, m)
    }

    /// Aggregate pool hit rate in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        let (h, m) = self.pool_hit_stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// The threshold visibility query of Fig. 3 against a frozen environment —
/// the `&`-shareable counterpart of [`search`](crate::search::search), with
/// optional batched V-page prefetch (`prefetch`).
///
/// All simulated I/O is charged to `ctx`'s cursors; the returned
/// [`SearchStats`] cover this query only.
pub fn search_shared(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    cell: CellId,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    prefetch: bool,
) -> Result<(QueryResult, SearchStats)> {
    assert!(eta >= 0.0, "eta must be non-negative");
    let node0 = ctx.node_cur.stats();
    let internal0 = ctx.internal_cur.stats();
    let model0 = ctx.model_cur.stats();
    let index0 = ctx.index_cur.stats();
    let vpage0 = ctx.vpage_cur.stats();

    env.vstore.enter_cell(ctx, cell)?;
    if prefetch {
        env.vstore.prefetch_cell(ctx)?;
    }

    let mut out = QueryResult::default();
    let mut stats = SearchStats::default();
    {
        let _traversal = hdov_obs::span(Phase::Traversal);
        recurse_shared(
            env,
            ctx,
            env.tree.root_ordinal(),
            eta,
            skip,
            &mut out,
            &mut stats,
        )?;
    }

    stats.node_io = ctx.node_cur.stats().since(&node0);
    stats.internal_io = ctx.internal_cur.stats().since(&internal0);
    stats.model_io = ctx.model_cur.stats().since(&model0);
    stats.vstore_io = ctx.index_cur.stats().since(&index0) + ctx.vpage_cur.stats().since(&vpage0);
    crate::search::record_query_obs(&stats);
    Ok((out, stats))
}

fn recurse_shared(
    env: &SharedEnvironment,
    ctx: &mut SessionCtx,
    ordinal: u32,
    eta: f64,
    skip: Option<&HashMap<ResultKey, usize>>,
    out: &mut QueryResult,
    stats: &mut SearchStats,
) -> Result<()> {
    let Some(vpage) = ({
        let _vp = hdov_obs::span(Phase::VPageRead);
        env.vstore.fetch(ctx, ordinal)?
    }) else {
        return Ok(()); // invisible (vertical/indexed prove it for free)
    };
    stats.vpages_fetched += 1;
    if !vpage.any_visible() {
        return Ok(()); // horizontal placeholder for a hidden node
    }
    let node = {
        let _nr = hdov_obs::span(Phase::NodeRead);
        env.tree.read_node(&mut ctx.node_cur, ordinal)?
    };
    stats.nodes_visited += 1;

    for (entry, ve) in node.entries.iter().zip(&vpage.entries) {
        if ve.dov <= 0.0 {
            continue; // line 3: completely hidden branch
        }
        if entry.is_object() {
            // Lines 4–5: leaf entry, Eq. 6.
            let k = (ve.dov as f64 / MAX_DOV).min(1.0);
            let level = select_level(&env.models.store, entry.child, k);
            let key = ResultKey::Object(entry.child);
            let cached = skip.and_then(|s| s.get(&key)).is_some_and(|&l| l == level);
            let h = if cached {
                env.models.store.handle(entry.child, level)
            } else {
                let _lf = hdov_obs::span(Phase::LodFetch);
                env.models.store.fetch(
                    &mut CursorFile::new(&env.models.pool, &mut ctx.model_cur),
                    entry.child,
                    level,
                )?
            };
            out.push(ResultEntry {
                key,
                level,
                polygons: h.polygons as u64,
                bytes: h.bytes as u64,
                dov: ve.dov,
                cached,
            });
        } else if (ve.dov as f64) <= eta
            && terminates_with(
                env.tree.heuristic,
                env.tree.fanout,
                &env.tree.internal_store,
                entry,
                ve,
            )
        {
            // Lines 7–8: barely visible subtree, Eq. 5.
            let k = if eta > 0.0 {
                (ve.dov as f64 / eta).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let child = entry.child_ordinal;
            let level = select_level(env.tree.internal_store(), child as u64, k);
            let key = ResultKey::Internal(child);
            let cached = skip.and_then(|s| s.get(&key)).is_some_and(|&l| l == level);
            let h = if cached {
                env.tree.internal_store().handle(child as u64, level)
            } else {
                let _lf = hdov_obs::span(Phase::LodFetch);
                env.tree
                    .fetch_internal_lod(&mut ctx.internal_cur, child, level)?
            };
            out.push(ResultEntry {
                key,
                level,
                polygons: h.polygons as u64,
                bytes: h.bytes as u64,
                dov: ve.dov,
                cached,
            });
        } else {
            // Line 10: descend.
            recurse_shared(env, ctx, entry.child_ordinal, eta, skip, out, stats)?;
        }
    }
    Ok(())
}
