//! Query budgets: bounded traversal for overload protection (DESIGN.md §12).
//!
//! A [`QueryBudget`] caps what one visibility query may spend before the
//! traversal stops descending and serves the remaining subtrees as internal
//! LoDs (the same graceful-degradation machinery §11 uses for read errors,
//! recorded with [`DegradeCause::BudgetExhausted`]). Two independent caps:
//!
//! * **Simulated cost** — the deterministic I/O + CPU charge every search
//!   already accounts (`SearchStats::search_time_ms` currency). This is the
//!   cap CI and the `overload` bench exercise: bit-identical across runs.
//! * **Wall-clock deadline** — a real [`Instant`] deadline for production
//!   serving, where a stalled device must not hold a frame hostage.
//!   Inherently nondeterministic; tests use the simulated cap.
//!
//! An [`unlimited`](QueryBudget::unlimited) budget is free: the traversal
//! performs one branch test per descent and touches no clock, so its answer,
//! simulated costs, and degrade report are byte-identical to the unbudgeted
//! path (pinned by the `budget` proptest suite).
//!
//! [`DegradeCause::BudgetExhausted`]: crate::search::DegradeCause::BudgetExhausted

use std::time::{Duration, Instant};

/// What one query may spend before its traversal degrades to internal LoDs.
///
/// Budgets are *soft*: exhaustion never fails the query and never truncates
/// the answer set — every remaining subtree is still represented, just by
/// its internal LoD instead of a full descent. Fetching those fallback LoDs
/// itself costs simulated time, so a budgeted query can overshoot its cap by
/// at most one internal-LoD fetch per pending subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBudget {
    /// Simulated-cost cap in milliseconds ([`SearchStats::search_time_ms`]
    /// currency: I/O elapsed plus per-node/per-V-page CPU).
    /// `f64::INFINITY` disables the cap.
    ///
    /// [`SearchStats::search_time_ms`]: crate::search::SearchStats::search_time_ms
    pub sim_ms: f64,
    /// Wall-clock allowance measured from the start of the query.
    /// `None` disables the deadline.
    pub wall: Option<Duration>,
}

impl QueryBudget {
    /// No caps — the budgeted path is byte-identical to the unbudgeted one.
    pub const UNLIMITED: QueryBudget = QueryBudget {
        sim_ms: f64::INFINITY,
        wall: None,
    };

    /// No caps (const form: [`Self::UNLIMITED`]).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::UNLIMITED
    }

    /// Cap the simulated cost at `ms` milliseconds.
    ///
    /// Non-finite or negative caps are normalized: `NaN`/`inf` mean
    /// unlimited, negatives clamp to zero (degrade at the first descent).
    #[must_use]
    pub fn sim_ms(ms: f64) -> Self {
        let sim_ms = if ms.is_finite() {
            ms.max(0.0)
        } else {
            f64::INFINITY
        };
        QueryBudget { sim_ms, wall: None }
    }

    /// Adds a wall-clock deadline `d` from the start of the query.
    #[must_use]
    pub fn with_wall(mut self, d: Duration) -> Self {
        self.wall = Some(d);
        self
    }

    /// True when either cap is active. An unlimited budget short-circuits
    /// every check in the traversal to a single branch.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.sim_ms.is_finite() || self.wall.is_some()
    }
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self::UNLIMITED
    }
}

/// Per-query budget tracker: the budget plus the query's cost baseline and
/// (when a wall deadline is set) its start-derived deadline instant.
///
/// Created once per search; `exhausted` is called at most once per descent
/// with the *current* cumulative I/O charge, so the tracker itself holds no
/// mutable state and never reads a clock on the unlimited path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BudgetClock {
    limited: bool,
    sim_budget_us: f64,
    base_io_us: f64,
    deadline: Option<Instant>,
}

impl BudgetClock {
    /// Starts tracking. `base_io_us` is the cumulative simulated I/O charge
    /// of the query's meters at query start (the stats are shared across
    /// queries; the budget covers only this query's delta).
    pub(crate) fn start(budget: QueryBudget, base_io_us: f64) -> Self {
        let limited = budget.is_limited();
        BudgetClock {
            limited,
            sim_budget_us: budget.sim_ms * 1000.0,
            base_io_us,
            // The only clock read on the limited path happens here, once.
            deadline: if limited {
                budget.wall.map(|d| Instant::now() + d)
            } else {
                None
            },
        }
    }

    /// True when any cap is active (callers skip the spent computation —
    /// and its meter reads — entirely on the unlimited path).
    #[inline]
    pub(crate) fn is_limited(&self) -> bool {
        self.limited
    }

    /// True when this query's spend has reached a cap. `io_elapsed_us` is
    /// the *cumulative* simulated I/O charge of the query's meters (the
    /// baseline is subtracted here); `nodes`/`vpages` are this query's
    /// counts, charged at the standard CPU rates.
    pub(crate) fn exhausted(&self, io_elapsed_us: f64, nodes: u64, vpages: u64) -> bool {
        debug_assert!(self.limited, "checked only on the limited path");
        let spent_us = (io_elapsed_us - self.base_io_us)
            + nodes as f64 * crate::search::CPU_PER_NODE_US
            + vpages as f64 * crate::search::CPU_PER_RESULT_US;
        if spent_us >= self.sim_budget_us {
            return true;
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_not_limited() {
        assert!(!QueryBudget::unlimited().is_limited());
        assert!(!QueryBudget::default().is_limited());
        assert!(!QueryBudget::sim_ms(f64::INFINITY).is_limited());
        assert!(!QueryBudget::sim_ms(f64::NAN).is_limited());
    }

    #[test]
    fn sim_cap_is_limited_and_clamped() {
        assert!(QueryBudget::sim_ms(5.0).is_limited());
        assert_eq!(QueryBudget::sim_ms(-3.0).sim_ms, 0.0);
        assert!(QueryBudget::unlimited()
            .with_wall(Duration::from_millis(1))
            .is_limited());
    }

    #[test]
    fn clock_exhausts_on_simulated_spend_only() {
        let c = BudgetClock::start(QueryBudget::sim_ms(1.0), 500.0);
        // 0.9 ms spent (delta from baseline): under the 1 ms cap.
        assert!(!c.exhausted(1400.0, 0, 0));
        // CPU charges count toward the cap too.
        assert!(c.exhausted(1400.0, 40, 10));
        // 1.0 ms spent: at the cap.
        assert!(c.exhausted(1500.0, 0, 0));
    }

    #[test]
    fn wall_deadline_trips_after_elapse() {
        let c = BudgetClock::start(
            QueryBudget::unlimited().with_wall(Duration::from_millis(0)),
            0.0,
        );
        assert!(c.is_limited());
        assert!(c.exhausted(0.0, 0, 0), "zero deadline is already past");
    }

    #[test]
    fn zero_budget_exhausts_immediately() {
        let c = BudgetClock::start(QueryBudget::sim_ms(0.0), 0.0);
        assert!(c.exhausted(0.0, 0, 0));
    }
}
