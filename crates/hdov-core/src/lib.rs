//! **The HDoV-tree** — a Hierarchical Degree-of-Visibility tree
//! (Shou, Huang, Tan; ICDE 2003).
//!
//! The HDoV-tree combines three ingredients (paper §3.2):
//!
//! 1. an R-tree backbone capturing the spatial distribution of the scene,
//! 2. *internal LoDs*: every node carries a chain of coarse meshes standing
//!    in for its whole subtree, and
//! 3. per-viewing-cell *degree-of-visibility* data `VD = (DoV, NVO)` for
//!    every entry — view-variant, stored outside the nodes in **V-pages**.
//!
//! A visibility query walks the tree under a DoV threshold `η`: entries with
//! `DoV = 0` are pruned, barely-visible subtrees (`DoV ≤ η`, and cheaper by
//! the Eq. 3/4 polygon heuristic) terminate at an internal LoD, and the rest
//! recurse down to objects whose LoD level is blended by Eq. 6.
//!
//! Three on-disk layouts for the view-variant data are provided behind
//! [`VisibilityStore`]: [`StorageScheme::Horizontal`],
//! [`StorageScheme::Vertical`], and [`StorageScheme::IndexedVertical`]
//! (paper §4), with exact storage-size and page-I/O accounting.
//!
//! The easiest entry point is [`HdovEnvironment`], which owns the whole
//! stack (node file, V-page store, model stores, cell grid) and answers
//! point visibility queries and delta queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod build;
pub mod delta;
pub mod env;
pub mod mutable;
pub mod node;
pub mod priority;
pub mod search;
pub mod shard;
pub mod shared;
pub mod storage;
pub mod vpage;

pub use budget::QueryBudget;
pub use build::{HdovBuildConfig, HdovTree, TerminationHeuristic};
pub use delta::DeltaSearch;
pub use env::HdovEnvironment;
pub use mutable::{MutableScene, ObjectHandle, ObjectInfo, SCENE_FILES};
pub use node::{HdovEntry, HdovNode};
pub use priority::{search_prioritized, search_prioritized_delta, PrioritizedOutcome};
pub use search::{
    naive_query, search, search_budgeted, DegradeCause, DegradeEvent, DegradeReport, QueryResult,
    ResultEntry, ResultKey, SearchStats,
};
pub use shard::{
    merge_frames, search_shard_into_budgeted, PathKey, ShardFrame, ShardPlan, MAX_SHARDS,
};
pub use shared::{
    search_shared, search_shared_budgeted, search_shared_into, search_shared_into_budgeted,
    CursorFile, PoolConfig, SearchScratch, SessionCtx, SharedEnvironment, SharedVStore,
};
pub use storage::{StorageScheme, VisibilityStore};
pub use vpage::{VEntry, VPage, VPageCodec, VPAGE_SIZE};
