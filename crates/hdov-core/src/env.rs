//! [`HdovEnvironment`] — the assembled system: tree + storage scheme +
//! models + cell grid, behind a small query API.

use crate::build::{HdovBuildConfig, HdovTree};
use crate::delta::{DeltaSearch, DeltaSummary};
use crate::search::{naive_query, search, ObjectModels, QueryResult, SearchStats};
use crate::storage::{StorageScheme, VisibilityStore};
use hdov_geom::Vec3;
use hdov_scene::Scene;
use hdov_storage::Result;
use hdov_visibility::{CellGrid, CellGridConfig, CellId, DovTable};
use std::sync::Arc;

/// A complete, queryable HDoV-tree deployment.
///
/// Owns the node file, the chosen visibility store, the object and
/// internal-LoD model banks, the cell grid, and (for fidelity metrics) the
/// ground-truth DoV table.
pub struct HdovEnvironment {
    tree: HdovTree,
    vstore: Box<dyn VisibilityStore>,
    objects: ObjectModels,
    grid: Arc<CellGrid>,
    table: Arc<DovTable>,
    scheme: StorageScheme,
    codec: crate::vpage::VPageCodec,
}

impl HdovEnvironment {
    /// Builds the full environment for `scene`.
    pub fn build(
        scene: &Scene,
        grid_cfg: &CellGridConfig,
        cfg: HdovBuildConfig,
        scheme: StorageScheme,
    ) -> Result<Self> {
        let grid = grid_cfg.build();
        let table = DovTable::compute(scene, &grid, &cfg.dov, cfg.threads);
        Self::build_with_table(scene, Arc::new(grid), cfg, scheme, Arc::new(table))
    }

    /// Builds the environment reusing a precomputed [`DovTable`] (avoids
    /// re-sampling when several systems share one scene). The grid and table
    /// are taken as [`Arc`]s so many systems can share one copy.
    pub fn build_with_table(
        scene: &Scene,
        grid: Arc<CellGrid>,
        cfg: HdovBuildConfig,
        scheme: StorageScheme,
        table: Arc<DovTable>,
    ) -> Result<Self> {
        let (tree, cells) = HdovTree::build_with_table(scene, &cfg, &table)?;
        let vstore = scheme.build(tree.entry_counts(), &cells, cfg.disk, cfg.codec)?;
        let objects = ObjectModels::build(scene, cfg.disk)?;
        Ok(HdovEnvironment {
            tree,
            vstore,
            objects,
            grid,
            table,
            scheme,
            codec: cfg.codec,
        })
    }

    /// Builds the environment over an existing R-tree backbone whose leaf
    /// payloads resolve through `remap` to dense ids of `scene` — the
    /// mutable write path's per-epoch derived rebuild (see
    /// [`HdovTree::build_from_backbone`]).
    pub fn build_from_backbone<F: hdov_storage::PagedFile>(
        scene: &Scene,
        grid: Arc<CellGrid>,
        cfg: HdovBuildConfig,
        scheme: StorageScheme,
        table: Arc<DovTable>,
        rtree: &mut hdov_rtree::RTree<F>,
        remap: &dyn Fn(u64) -> u64,
    ) -> Result<Self> {
        let (tree, cells) = HdovTree::build_from_backbone(scene, &cfg, &table, rtree, remap)?;
        let vstore = scheme.build(tree.entry_counts(), &cells, cfg.disk, cfg.codec)?;
        let objects = ObjectModels::build(scene, cfg.disk)?;
        Ok(HdovEnvironment {
            tree,
            vstore,
            objects,
            grid,
            table,
            scheme,
            codec: cfg.codec,
        })
    }

    /// The viewing cell containing (or nearest to) `viewpoint`.
    pub fn cell_of(&self, viewpoint: Vec3) -> CellId {
        self.grid.clamped_cell_of(viewpoint)
    }

    /// Visibility query at `viewpoint` with threshold `eta` (Fig. 3).
    pub fn query(&mut self, viewpoint: Vec3, eta: f64) -> Result<QueryResult> {
        Ok(self.query_with_stats(viewpoint, eta)?.0)
    }

    /// [`query`](Self::query) plus the per-query cost breakdown.
    pub fn query_with_stats(
        &mut self,
        viewpoint: Vec3,
        eta: f64,
    ) -> Result<(QueryResult, SearchStats)> {
        let cell = self.cell_of(viewpoint);
        self.query_cell(cell, eta)
    }

    /// Query by cell id.
    pub fn query_cell(&mut self, cell: CellId, eta: f64) -> Result<(QueryResult, SearchStats)> {
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        search(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
            eta,
            None,
        )
    }

    /// [`query_cell`](Self::query_cell) under a
    /// [`QueryBudget`](crate::QueryBudget): an exhausted budget stops the
    /// descent and serves the remaining subtrees as internal LoDs (see
    /// [`search_budgeted`](crate::search::search_budgeted)). An unlimited
    /// budget is byte-identical to [`query_cell`](Self::query_cell).
    pub fn query_cell_budgeted(
        &mut self,
        cell: CellId,
        eta: f64,
        budget: crate::QueryBudget,
    ) -> Result<(QueryResult, SearchStats)> {
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        crate::search::search_budgeted(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
            eta,
            None,
            budget,
        )
    }

    /// The naïve (cell, list-of-objects) baseline at `viewpoint`.
    pub fn query_naive(&mut self, viewpoint: Vec3) -> Result<(QueryResult, SearchStats)> {
        let cell = self.cell_of(viewpoint);
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        naive_query(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
        )
    }

    /// Delta query for walkthroughs: models resident in `delta` at the same
    /// LoD level are reused without model I/O; the resident set is updated.
    pub fn query_delta(
        &mut self,
        viewpoint: Vec3,
        eta: f64,
        delta: &mut DeltaSearch,
    ) -> Result<(QueryResult, SearchStats, DeltaSummary)> {
        let cell = self.cell_of(viewpoint);
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        let skip = delta.skip_map();
        let (result, stats) = search(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
            eta,
            Some(&skip),
        )?;
        let summary = delta.apply(&result);
        Ok((result, stats, summary))
    }

    /// Frustum-prioritized (optionally budgeted) query — see
    /// [`search_prioritized`](crate::priority::search_prioritized).
    pub fn query_prioritized(
        &mut self,
        frustum: &hdov_geom::Frustum,
        eta: f64,
        budget_ms: Option<f64>,
    ) -> Result<(crate::priority::PrioritizedOutcome, SearchStats)> {
        let cell = self.cell_of(frustum.eye);
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        crate::priority::search_prioritized(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
            eta,
            frustum,
            budget_ms,
        )
    }

    /// Budgeted, frustum-prioritized delta query: resident models are
    /// reused without I/O, the rest stream in priority order until
    /// `budget_ms` expires; the resident set is updated with whatever
    /// loaded.
    pub fn query_prioritized_delta(
        &mut self,
        frustum: &hdov_geom::Frustum,
        eta: f64,
        budget_ms: Option<f64>,
        delta: &mut DeltaSearch,
    ) -> Result<(crate::priority::PrioritizedOutcome, SearchStats)> {
        let cell = self.cell_of(frustum.eye);
        self.tree.reset_io();
        self.objects.disk.reset_stats();
        let skip = delta.skip_map();
        let (outcome, stats) = crate::priority::search_prioritized_delta(
            &mut self.tree,
            self.vstore.as_mut(),
            &mut self.objects,
            cell,
            eta,
            frustum,
            budget_ms,
            Some(&skip),
        )?;
        if outcome.completed {
            delta.apply(&outcome.result);
        } else {
            // A truncated frame must not evict content that simply didn't
            // get re-confirmed before the deadline: merge instead.
            delta.merge(&outcome.result);
        }
        Ok((outcome, stats))
    }

    /// Arms seeded fault injection on every file of the environment — node
    /// pages, internal LoDs, object models, and the visibility store's
    /// disks (chaos testing). Reads then flow through each disk's retry
    /// policy; unreadable subtrees degrade to internal LoDs (see
    /// [`QueryResult::degrade`]).
    pub fn arm_faults(&mut self, plan: &hdov_storage::FaultPlan) {
        self.tree.arm_faults(plan);
        self.vstore.arm_faults(plan);
        self.objects.disk.arm_faults(plan.clone());
    }

    /// Disarms fault injection everywhere (subsequent reads are clean).
    pub fn disarm_faults(&mut self) {
        self.tree.disarm_faults();
        self.vstore.disarm_faults();
        self.objects.disk.disarm_faults();
    }

    /// Relocates every store of the environment — node pages, internal
    /// LoDs, object models, and the visibility store's disks — onto
    /// `backend` (see [`hdov_storage::StorageBackend::freeze`]). Store
    /// names are prefixed with the scheme label so several schemes can
    /// share one directory. Answers and simulated I/O costs are
    /// byte-identical across backends; only the physical residence of the
    /// pages changes. The environment becomes read-only (in particular
    /// [`refresh_visibility`](Self::refresh_visibility) rebuilds the
    /// V-page store in memory again).
    pub fn relocate(&mut self, backend: &hdov_storage::StorageBackend) -> Result<()> {
        let prefix = format!("{}_", self.scheme);
        self.tree.relocate(backend, &prefix)?;
        self.objects.relocate(backend, &prefix)?;
        self.vstore.relocate(backend)
    }

    /// The ground-truth total DoV of a cell (denominator of fidelity
    /// metrics).
    pub fn cell_total_dov(&self, cell: CellId) -> f64 {
        self.table.total_dov(cell)
    }

    /// Number of visible objects in a cell (`N_vobj`).
    pub fn cell_visible_objects(&self, cell: CellId) -> usize {
        self.table.visible_count(cell)
    }

    /// Replaces the environment's visibility data with an updated
    /// [`DovTable`] (e.g. after [`DovTable::recompute_cells`] absorbed a
    /// lighting or door-state change): the view-invariant tree, internal
    /// LoDs, and object models are reused; only the V-page store is rebuilt.
    pub fn refresh_visibility(
        &mut self,
        table: DovTable,
        disk: hdov_storage::DiskModel,
    ) -> Result<()> {
        let cells = self.tree.aggregate_from_table(&table)?;
        self.vstore = self
            .scheme
            .build(self.tree.entry_counts(), &cells, disk, self.codec)?;
        self.table = Arc::new(table);
        Ok(())
    }

    /// Renders the *instantiated* tree of one cell as indented text — the
    /// paper's Fig. 1 made inspectable: the same topology, with each entry's
    /// view-variant `(DoV, NVO)` for that cell. Hidden subtrees print as
    /// `(hidden)` and are not descended into.
    pub fn dump_cell(&mut self, cell: CellId) -> Result<String> {
        self.vstore.enter_cell(cell)?;
        let mut out = String::new();
        out.push_str(&format!(
            "cell {cell}: {} visible objects, total DoV {:.4}\n",
            self.table.visible_count(cell),
            self.table.total_dov(cell)
        ));
        self.dump_node(0, 0, &mut out)?;
        Ok(out)
    }

    fn dump_node(&mut self, ordinal: u32, depth: usize, out: &mut String) -> Result<()> {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let Some(vpage) = self.vstore.fetch(ordinal)? else {
            let _ = writeln!(out, "{indent}node {ordinal} (hidden)");
            return Ok(());
        };
        let node = self.tree.read_node(ordinal)?;
        let _ = writeln!(
            out,
            "{indent}node {ordinal} [{}] dov={:.4} nvo={}",
            if node.is_leaf { "leaf" } else { "internal" },
            vpage.node_dov(),
            vpage.node_nvo()
        );
        for (e, ve) in node.entries.iter().zip(&vpage.entries) {
            if !ve.visible() {
                continue;
            }
            if e.is_object() {
                let _ = writeln!(out, "{indent}  object {} dov={:.4}", e.child, ve.dov);
            } else {
                self.dump_node(e.child_ordinal, depth + 1, out)?;
            }
        }
        Ok(())
    }

    /// The precomputed DoV table (ground truth for metrics).
    pub fn dov_table(&self) -> &DovTable {
        &self.table
    }

    /// A shared handle to the DoV table — systems needing their own copy of
    /// the ground truth clone the `Arc`, not the table.
    pub fn dov_table_shared(&self) -> Arc<DovTable> {
        Arc::clone(&self.table)
    }

    /// The cell grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// A shared handle to the cell grid.
    pub fn grid_shared(&self) -> Arc<CellGrid> {
        Arc::clone(&self.grid)
    }

    /// The view-invariant tree.
    pub fn tree(&self) -> &HdovTree {
        &self.tree
    }

    /// Mutable tree access (benchmarks reading nodes directly).
    pub fn tree_mut(&mut self) -> &mut HdovTree {
        &mut self.tree
    }

    /// The object model bank.
    pub fn objects(&self) -> &ObjectModels {
        &self.objects
    }

    /// The active storage scheme.
    pub fn scheme(&self) -> StorageScheme {
        self.scheme
    }

    /// The V-page codec the visibility store was built with.
    pub fn codec(&self) -> crate::vpage::VPageCodec {
        self.codec
    }

    /// The visibility store (for storage-size accounting).
    pub fn vstore(&self) -> &dyn VisibilityStore {
        self.vstore.as_ref()
    }

    /// Freezes the environment into its immutable, `&`-shareable
    /// counterpart for concurrent multi-session querying — see
    /// [`crate::shared`]. The on-disk layout of every file is preserved
    /// (pages are moved, not rewritten).
    pub fn into_shared(self, pool: crate::shared::PoolConfig) -> crate::shared::SharedEnvironment {
        crate::shared::SharedEnvironment::from_parts(
            self.tree,
            self.vstore,
            self.objects,
            self.grid,
            self.table,
            self.scheme,
            pool,
        )
    }
}
