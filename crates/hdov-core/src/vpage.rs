//! V-pages: the view-variant `(DoV, NVO)` data of one node in one cell.
//!
//! "The V-page contains V-entries, one for each entry in a tree node, i.e.,
//! each MBR has a corresponding V-entry" (paper §4.1). V-pages are fixed
//! size, sized to the node capacity; several V-pages pack into one disk
//! page, and a V-page never straddles a disk-page boundary, so fetching a
//! V-page costs exactly one page I/O.
//!
//! Two wire formats exist behind [`VPageCodec`] (see `DESIGN.md` §15):
//!
//! * **Raw** — the original layout: `u32` count + `count` × 8-byte
//!   `(f32 DoV, u32 NVO)` pairs, zero-padded to the record slot.
//! * **Delta** — a 1-byte record flag, then struct-of-arrays columns:
//!   varint count, a DoV presence bitmap with the nonzero `f32` bit
//!   patterns packed densely behind it (hidden entries cost one bit), and
//!   the NVO column as zigzag varints of consecutive differences. Records
//!   whose delta form would exceed the raw form fall back to a flagged raw
//!   payload, so a delta record is never more than one byte larger than
//!   raw — and the flag byte means raw-fallback pages remain readable
//!   forever, whatever the codec evolves into.

use hdov_storage::codec::{read_varint, unzigzag, varint_len, zigzag, ByteReader, ByteWriter};
use hdov_storage::frozen::STORE_FLAG_VPAGE_DELTA;
use hdov_storage::{Result, StorageError, PAGE_SIZE};

/// Maximum entries per HDoV node (must match [`crate::node::MAX_ENTRIES`]).
pub(crate) const VPAGE_CAPACITY: usize = crate::node::MAX_ENTRIES;

/// Fixed V-page size in bytes: 4-byte count header + capacity × 8-byte
/// V-entries.
pub const VPAGE_SIZE: usize = 4 + VPAGE_CAPACITY * 8;

/// V-pages per disk page.
pub const VPAGES_PER_DISK_PAGE: usize = PAGE_SIZE / VPAGE_SIZE;

/// Record flag announcing a raw `(count, entries…)` payload behind it.
const RECORD_FLAG_RAW: u8 = 0x00;

/// Record flag announcing a delta-encoded column payload behind it.
const RECORD_FLAG_DELTA: u8 = 0x01;

/// Smallest usable delta record slot: flag + the 4-byte count of a
/// raw-fallback payload. Slots this size also make an all-zero padding
/// slot decode as an empty page (flag `0x00`, raw count 0).
pub const MIN_DELTA_RECORD_BYTES: usize = 5;

/// Which wire format V-page records use inside a store.
///
/// The codec is a *build-time* choice threaded through
/// [`crate::storage::StorageScheme::build`]; every record in a delta store
/// still carries its own format flag, so readers never guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VPageCodec {
    /// The original fixed-layout format: `u32` count + 8-byte entries.
    Raw,
    /// Delta/varint column format with per-record raw fallback.
    #[default]
    Delta,
}

impl VPageCodec {
    /// Parses a `--codec` axis value (`raw` | `delta`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(VPageCodec::Raw),
            "delta" => Some(VPageCodec::Delta),
            _ => None,
        }
    }

    /// Short stable label for reports and store names.
    pub fn label(self) -> &'static str {
        match self {
            VPageCodec::Raw => "raw",
            VPageCodec::Delta => "delta",
        }
    }

    /// Frozen-store header flags recording this codec.
    pub fn store_flags(self) -> u32 {
        match self {
            VPageCodec::Raw => 0,
            VPageCodec::Delta => STORE_FLAG_VPAGE_DELTA,
        }
    }

    /// Encodes `vpage` into exactly `record_bytes` bytes under this codec.
    pub fn encode_record(self, vpage: &VPage, record_bytes: usize) -> Result<Vec<u8>> {
        match self {
            VPageCodec::Raw => vpage.encode_sized(record_bytes),
            VPageCodec::Delta => vpage.encode_delta_sized(record_bytes),
        }
    }

    /// Decodes one record slot under this codec.
    pub fn decode_record(self, bytes: &[u8]) -> Result<VPage> {
        match self {
            VPageCodec::Raw => VPage::decode(bytes),
            VPageCodec::Delta => VPage::decode_flagged(bytes),
        }
    }

    /// Exact pre-padding encoded length of `vpage` under this codec.
    pub fn record_len(self, vpage: &VPage) -> usize {
        match self {
            VPageCodec::Raw => 4 + 8 * vpage.entries.len(),
            VPageCodec::Delta => vpage.delta_len(),
        }
    }

    /// Exact pre-padding encoded length of an all-hidden page with `count`
    /// entries (closed form — no page is materialized). Horizontal stores
    /// use this to size slots for their hidden placeholders.
    pub fn hidden_record_len(self, count: usize) -> usize {
        match self {
            VPageCodec::Raw => 4 + 8 * count,
            // flag + varint count + all-zero presence bitmap + no DoV words
            // + `count` single-byte zero deltas, capped by the raw fallback.
            VPageCodec::Delta => {
                (1 + varint_len(count as u64) + count.div_ceil(8) + count).min(1 + 4 + 8 * count)
            }
        }
    }
}

/// The view-variant data of one node entry: `VD = (DoV, NVO)` (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VEntry {
    /// Degree of visibility of the entry's subtree (or object) in `[0, 1]`.
    pub dov: f32,
    /// Number of visible objects below the entry (1 for a visible object).
    pub nvo: u32,
}

impl VEntry {
    /// An invisible entry.
    pub const HIDDEN: VEntry = VEntry { dov: 0.0, nvo: 0 };

    /// True if anything under this entry is visible.
    #[inline]
    pub fn visible(&self) -> bool {
        self.dov > 0.0
    }
}

/// One node's V-entries for one cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VPage {
    /// V-entries, aligned with the node's entry order.
    pub entries: Vec<VEntry>,
}

impl VPage {
    /// Creates a V-page from entries.
    ///
    /// # Panics
    /// Panics when more entries than the node capacity are supplied.
    pub fn new(entries: Vec<VEntry>) -> Self {
        assert!(entries.len() <= VPAGE_CAPACITY, "V-page overflow");
        VPage { entries }
    }

    /// Total DoV across entries (the node's own DoV, by paper property 2).
    pub fn node_dov(&self) -> f64 {
        self.entries.iter().map(|e| e.dov as f64).sum()
    }

    /// Total NVO across entries.
    pub fn node_nvo(&self) -> u64 {
        self.entries.iter().map(|e| e.nvo as u64).sum()
    }

    /// True if any entry is visible.
    pub fn any_visible(&self) -> bool {
        self.entries.iter().any(VEntry::visible)
    }

    /// Serializes into exactly [`VPAGE_SIZE`] bytes (raw format).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_sized(VPAGE_SIZE)
            .expect("VPage::new enforces VPAGE_CAPACITY, which fits VPAGE_SIZE")
    }

    /// Serializes the raw format into exactly `record_bytes` bytes
    /// (`4 + 8·M` for fan-out `M` V-pages), or a typed
    /// [`StorageError::VPageOverflow`] when the entries do not fit — never
    /// a silent truncation.
    pub fn encode_sized(&self, record_bytes: usize) -> Result<Vec<u8>> {
        let needed = 4 + 8 * self.entries.len();
        if needed > record_bytes {
            return Err(StorageError::VPageOverflow {
                entries: self.entries.len(),
                needed,
                record_bytes,
            });
        }
        let mut w = ByteWriter::with_capacity(record_bytes);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_f32(e.dov);
            w.put_u32(e.nvo);
        }
        let mut bytes = w.into_bytes();
        bytes.resize(record_bytes, 0);
        Ok(bytes)
    }

    /// Decodes a raw-format V-page record.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let count = r.get_u32()? as usize;
        if count > VPAGE_CAPACITY {
            return Err(StorageError::Corrupt(format!(
                "V-page count {count} exceeds capacity {VPAGE_CAPACITY}"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(VEntry {
                dov: r.get_f32()?,
                nvo: r.get_u32()?,
            });
        }
        Ok(VPage { entries })
    }

    /// Exact pre-padding length of this page's delta record (flag byte
    /// included), accounting for the per-record raw fallback.
    pub fn delta_len(&self) -> usize {
        (1 + self.delta_body_len()).min(1 + 4 + 8 * self.entries.len())
    }

    /// Length of the delta column payload (everything after the flag byte).
    fn delta_body_len(&self) -> usize {
        let n = self.entries.len();
        let mut len = varint_len(n as u64) + n.div_ceil(8);
        let mut prev = 0i64;
        for e in &self.entries {
            if e.dov.to_bits() != 0 {
                len += 4;
            }
            let v = e.nvo as i64;
            len += varint_len(zigzag(v - prev));
            prev = v;
        }
        len
    }

    /// Serializes the flagged delta format into exactly `record_bytes`
    /// bytes, falling back to a flagged raw payload when delta would be
    /// larger. Returns [`StorageError::VPageOverflow`] when even the
    /// smaller form does not fit.
    pub fn encode_delta_sized(&self, record_bytes: usize) -> Result<Vec<u8>> {
        let n = self.entries.len();
        let body = self.delta_body_len();
        let raw_payload = 4 + 8 * n;
        let needed = 1 + body.min(raw_payload);
        if needed > record_bytes {
            return Err(StorageError::VPageOverflow {
                entries: n,
                needed,
                record_bytes,
            });
        }
        let mut w = ByteWriter::with_capacity(record_bytes);
        if body <= raw_payload {
            w.put_u8(RECORD_FLAG_DELTA);
            self.encode_delta_body(&mut w);
        } else {
            w.put_u8(RECORD_FLAG_RAW);
            w.put_u32(n as u32);
            for e in &self.entries {
                w.put_f32(e.dov);
                w.put_u32(e.nvo);
            }
        }
        debug_assert_eq!(w.len(), needed, "delta_len closed form drifted");
        let mut bytes = w.into_bytes();
        bytes.resize(record_bytes, 0);
        Ok(bytes)
    }

    /// Writes the delta column payload: varint count, DoV presence bitmap,
    /// packed nonzero DoV bit patterns, then the NVO column as zigzag
    /// varints of consecutive differences.
    fn encode_delta_body(&self, w: &mut ByteWriter) {
        let n = self.entries.len();
        w.put_varint(n as u64);
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (i, e) in self.entries.iter().enumerate() {
            if e.dov.to_bits() != 0 {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        w.put_slice(&bitmap);
        for e in &self.entries {
            if e.dov.to_bits() != 0 {
                w.put_slice(&e.dov.to_le_bytes());
            }
        }
        let mut prev = 0i64;
        for e in &self.entries {
            let v = e.nvo as i64;
            w.put_varint(zigzag(v - prev));
            prev = v;
        }
    }

    /// Decodes a flagged record slot: the first byte selects raw or delta.
    /// Trailing slot padding is ignored by both payloads, and an all-zero
    /// slot (flag `0x00`, raw count 0) decodes as the empty page.
    pub fn decode_flagged(bytes: &[u8]) -> Result<Self> {
        let Some((&flag, rest)) = bytes.split_first() else {
            return Err(StorageError::Corrupt(
                "empty V-page record (no format flag)".into(),
            ));
        };
        match flag {
            RECORD_FLAG_RAW => Self::decode(rest),
            RECORD_FLAG_DELTA => Self::decode_delta(rest),
            other => Err(StorageError::Corrupt(format!(
                "unknown V-page record flag {other:#04x}"
            ))),
        }
    }

    /// Decodes the delta column payload (`bytes` excludes the flag byte).
    ///
    /// Both columns decode in tight per-column loops over the
    /// struct-of-arrays payload: the DoV column is driven by bitmap
    /// popcounts with a straight-line 4-wide unrolled path for fully
    /// visible bitmap bytes (mirroring the 4-lane FNV checksum), and the
    /// NVO column has a branch-light quad path for four consecutive
    /// single-byte varints — the dominant case for sorted small deltas.
    fn decode_delta(bytes: &[u8]) -> Result<Self> {
        let truncated = || StorageError::Corrupt("truncated delta V-page record".into());
        let (count, mut pos) = read_varint(bytes, 0)?;
        let n = count as usize;
        if count > VPAGE_CAPACITY as u64 {
            return Err(StorageError::Corrupt(format!(
                "V-page count {count} exceeds capacity {VPAGE_CAPACITY}"
            )));
        }
        let bm_len = n.div_ceil(8);
        let bitmap = bytes.get(pos..pos + bm_len).ok_or_else(truncated)?;
        pos += bm_len;
        if !n.is_multiple_of(8) && bitmap[bm_len - 1] >> (n % 8) != 0 {
            return Err(StorageError::Corrupt(
                "V-page DoV bitmap sets bits beyond the entry count".into(),
            ));
        }
        let nnz: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        let dov_bytes = bytes.get(pos..pos + 4 * nnz).ok_or_else(truncated)?;
        pos += 4 * nnz;

        let mut entries = vec![VEntry::HIDDEN; n];

        // DoV column. `k` walks the densely packed nonzero words; bitmap
        // invariants above guarantee every computed index is in bounds.
        let mut k = 0usize;
        for (byte_idx, &b) in bitmap.iter().enumerate() {
            let base = byte_idx * 8;
            if b == 0xFF {
                // Fully visible byte: copy 8 words straight-line as two
                // 4-wide groups, no per-bit control flow.
                let src = &dov_bytes[4 * k..4 * k + 32];
                entries[base].dov = f32::from_le_bytes(src[0..4].try_into().unwrap());
                entries[base + 1].dov = f32::from_le_bytes(src[4..8].try_into().unwrap());
                entries[base + 2].dov = f32::from_le_bytes(src[8..12].try_into().unwrap());
                entries[base + 3].dov = f32::from_le_bytes(src[12..16].try_into().unwrap());
                entries[base + 4].dov = f32::from_le_bytes(src[16..20].try_into().unwrap());
                entries[base + 5].dov = f32::from_le_bytes(src[20..24].try_into().unwrap());
                entries[base + 6].dov = f32::from_le_bytes(src[24..28].try_into().unwrap());
                entries[base + 7].dov = f32::from_le_bytes(src[28..32].try_into().unwrap());
                k += 8;
                continue;
            }
            let mut bits = b;
            while bits != 0 {
                let i = base + bits.trailing_zeros() as usize;
                let d: [u8; 4] = dov_bytes[4 * k..4 * k + 4].try_into().unwrap();
                entries[i].dov = f32::from_le_bytes(d);
                k += 1;
                bits &= bits - 1;
            }
        }

        // NVO column: zigzag varint deltas over the remaining bytes.
        let nv = bytes.get(pos..).ok_or_else(truncated)?;
        let mut p = 0usize;
        let mut prev = 0i64;
        let mut i = 0usize;
        while i < n {
            if i + 4 <= n {
                if let Some(q) = nv.get(p..p + 4) {
                    if (q[0] | q[1] | q[2] | q[3]) & 0x80 == 0 {
                        // Four single-byte varints: decode straight-line.
                        // `prev` is u32-bounded after every entry, and each
                        // single-byte delta is within ±63, so the prefix
                        // sums cannot overflow i64.
                        let v0 = prev + unzigzag(u64::from(q[0]));
                        let v1 = v0 + unzigzag(u64::from(q[1]));
                        let v2 = v1 + unzigzag(u64::from(q[2]));
                        let v3 = v2 + unzigzag(u64::from(q[3]));
                        entries[i].nvo = nvo_in_range(v0)?;
                        entries[i + 1].nvo = nvo_in_range(v1)?;
                        entries[i + 2].nvo = nvo_in_range(v2)?;
                        entries[i + 3].nvo = nvo_in_range(v3)?;
                        prev = v3;
                        p += 4;
                        i += 4;
                        continue;
                    }
                }
            }
            let (u, used) = read_varint(nv, p)?;
            p += used;
            let v = prev
                .checked_add(unzigzag(u))
                .ok_or_else(|| StorageError::Corrupt("V-page NVO delta chain overflows".into()))?;
            entries[i].nvo = nvo_in_range(v)?;
            prev = v;
            i += 1;
        }
        Ok(VPage { entries })
    }
}

fn nvo_in_range(v: i64) -> Result<u32> {
    u32::try_from(v)
        .map_err(|_| StorageError::Corrupt(format!("decoded NVO {v} outside u32 range")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn packing_constants() {
        assert!(VPAGES_PER_DISK_PAGE >= 1);
        assert!(VPAGE_SIZE * VPAGES_PER_DISK_PAGE <= PAGE_SIZE);
    }

    #[test]
    fn round_trip() {
        let vp = VPage::new(vec![
            VEntry { dov: 0.25, nvo: 3 },
            VEntry::HIDDEN,
            VEntry { dov: 0.001, nvo: 1 },
        ]);
        let bytes = vp.encode();
        assert_eq!(bytes.len(), VPAGE_SIZE);
        assert_eq!(VPage::decode(&bytes).unwrap(), vp);
    }

    #[test]
    fn aggregates() {
        let vp = VPage::new(vec![
            VEntry { dov: 0.25, nvo: 3 },
            VEntry { dov: 0.5, nvo: 4 },
        ]);
        assert!((vp.node_dov() - 0.75).abs() < 1e-9);
        assert_eq!(vp.node_nvo(), 7);
        assert!(vp.any_visible());
        assert!(!VPage::new(vec![VEntry::HIDDEN]).any_visible());
        assert!(!VEntry::HIDDEN.visible());
    }

    #[test]
    fn decode_rejects_bad_count() {
        let mut bytes = VPage::new(vec![]).encode();
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        assert!(VPage::decode(&bytes).is_err());
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let _ = VPage::new(vec![VEntry::HIDDEN; VPAGE_CAPACITY + 1]);
    }

    #[test]
    fn encode_sized_overflow_is_typed_error_not_truncation() {
        let vp = VPage::new(vec![VEntry { dov: 0.5, nvo: 2 }; 3]);
        let err = vp.encode_sized(4 + 8 * 2).unwrap_err();
        match err {
            StorageError::VPageOverflow {
                entries,
                needed,
                record_bytes,
            } => {
                assert_eq!(entries, 3);
                assert_eq!(needed, 4 + 8 * 3);
                assert_eq!(record_bytes, 4 + 8 * 2);
            }
            other => panic!("expected VPageOverflow, got {other}"),
        }
        // The exact fit still works.
        assert!(vp.encode_sized(4 + 8 * 3).is_ok());
    }

    fn delta_round_trip(vp: &VPage) -> usize {
        let len = vp.delta_len();
        let bytes = vp.encode_delta_sized(len).unwrap();
        assert_eq!(bytes.len(), len);
        assert_eq!(&VPage::decode_flagged(&bytes).unwrap(), vp);
        // Slot padding must not change the answer.
        let padded = vp.encode_delta_sized(len + 17).unwrap();
        assert_eq!(&VPage::decode_flagged(&padded).unwrap(), vp);
        len
    }

    #[test]
    fn delta_round_trips_representative_shapes() {
        // Empty.
        delta_round_trip(&VPage::default());
        // All hidden (the horizontal scheme's placeholder shape).
        let hidden = VPage::new(vec![VEntry::HIDDEN; 17]);
        let len = delta_round_trip(&hidden);
        assert_eq!(len, VPageCodec::Delta.hidden_record_len(17));
        assert!(len < 4 + 8 * 17);
        // Fully visible with small sorted NVO runs: the common real shape.
        let sorted = VPage::new(
            (0..VPAGE_CAPACITY)
                .map(|i| VEntry {
                    dov: 0.01 + i as f32 / 100.0,
                    nvo: (3 * i) as u32,
                })
                .collect(),
        );
        delta_round_trip(&sorted);
        // Mixed visibility, decreasing NVO (negative deltas).
        let mixed = VPage::new(
            (0..23)
                .map(|i| VEntry {
                    dov: if i % 3 == 0 { 0.5 } else { 0.0 },
                    nvo: (1000 - 40 * i) as u32,
                })
                .collect(),
        );
        delta_round_trip(&mixed);
        // Negative zero DoV has a nonzero bit pattern and must survive.
        let neg_zero = VPage::new(vec![VEntry { dov: -0.0, nvo: 7 }]);
        let got = VPage::decode_flagged(&neg_zero.encode_delta_sized(32).unwrap()).unwrap();
        assert_eq!(got.entries[0].dov.to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn delta_never_exceeds_raw_plus_flag() {
        // Adversarial NVO jumps force maximal varints; the raw fallback
        // caps the record at raw + 1 flag byte.
        let wild = VPage::new(
            (0..20)
                .map(|i| VEntry {
                    dov: 1.0,
                    nvo: if i % 2 == 0 { 0 } else { u32::MAX },
                })
                .collect(),
        );
        let len = wild.delta_len();
        assert_eq!(len, 1 + 4 + 8 * 20);
        let bytes = wild.encode_delta_sized(len).unwrap();
        assert_eq!(bytes[0], RECORD_FLAG_RAW);
        assert_eq!(VPage::decode_flagged(&bytes).unwrap(), wild);
    }

    #[test]
    fn delta_record_len_matches_encoding_exactly() {
        let vp = VPage::new(
            (0..31)
                .map(|i| VEntry {
                    dov: if i % 2 == 0 { 0.25 } else { 0.0 },
                    nvo: i as u32 * 2,
                })
                .collect(),
        );
        let len = VPageCodec::Delta.record_len(&vp);
        assert_eq!(len, vp.delta_len());
        assert!(vp.encode_delta_sized(len).is_ok());
        let err = vp.encode_delta_sized(len - 1).unwrap_err();
        assert!(matches!(err, StorageError::VPageOverflow { .. }), "{err}");
    }

    #[test]
    fn zeroed_padding_slot_decodes_as_empty_page() {
        let vp = VPage::decode_flagged(&[0u8; MIN_DELTA_RECORD_BYTES]).unwrap();
        assert!(vp.entries.is_empty());
    }

    #[test]
    fn delta_decode_rejects_corruption_fast() {
        // Unknown record flag.
        let err = VPage::decode_flagged(&[0x7F, 0, 0, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("unknown V-page record flag"));
        // Empty record.
        assert!(VPage::decode_flagged(&[]).is_err());
        // Count beyond capacity.
        let mut w = ByteWriter::new();
        w.put_u8(RECORD_FLAG_DELTA);
        w.put_varint(VPAGE_CAPACITY as u64 + 1);
        assert!(VPage::decode_flagged(w.bytes()).is_err());
        // Truncated mid-columns: chop a valid record anywhere and decode
        // must error, never panic or fabricate entries.
        let vp = VPage::new(
            (0..9)
                .map(|i| VEntry {
                    dov: 0.125,
                    nvo: 100 + i as u32,
                })
                .collect(),
        );
        let bytes = vp.encode_delta_sized(vp.delta_len()).unwrap();
        for cut in 1..bytes.len() {
            assert!(
                VPage::decode_flagged(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
        // Bitmap bits beyond the entry count.
        let one = VPage::new(vec![VEntry::HIDDEN; 3]);
        let mut enc = one.encode_delta_sized(one.delta_len()).unwrap();
        assert_eq!(enc[0], RECORD_FLAG_DELTA);
        enc[2] |= 0b1000; // bit 3 of the bitmap, but only 3 entries exist
        assert!(VPage::decode_flagged(&enc)
            .unwrap_err()
            .to_string()
            .contains("beyond the entry count"));
    }

    #[test]
    fn codec_axis_parses_and_labels() {
        assert_eq!(VPageCodec::parse("raw"), Some(VPageCodec::Raw));
        assert_eq!(VPageCodec::parse("delta"), Some(VPageCodec::Delta));
        assert_eq!(VPageCodec::parse("zstd"), None);
        assert_eq!(VPageCodec::Raw.label(), "raw");
        assert_eq!(VPageCodec::Delta.label(), "delta");
        assert_eq!(VPageCodec::default(), VPageCodec::Delta);
        assert_eq!(VPageCodec::Raw.store_flags(), 0);
        assert_eq!(VPageCodec::Delta.store_flags(), STORE_FLAG_VPAGE_DELTA);
    }

    #[test]
    fn hidden_record_len_closed_form_matches_real_pages() {
        for count in [0usize, 1, 7, 8, 9, VPAGE_CAPACITY] {
            let page = VPage::new(vec![VEntry::HIDDEN; count]);
            assert_eq!(
                VPageCodec::Delta.hidden_record_len(count),
                page.delta_len(),
                "count {count}"
            );
            assert_eq!(
                VPageCodec::Raw.hidden_record_len(count),
                VPageCodec::Raw.record_len(&page)
            );
        }
    }
}
