//! V-pages: the view-variant `(DoV, NVO)` data of one node in one cell.
//!
//! "The V-page contains V-entries, one for each entry in a tree node, i.e.,
//! each MBR has a corresponding V-entry" (paper §4.1). V-pages are fixed
//! size, sized to the node capacity; several V-pages pack into one disk
//! page, and a V-page never straddles a disk-page boundary, so fetching a
//! V-page costs exactly one page I/O.

use hdov_storage::codec::{ByteReader, ByteWriter};
use hdov_storage::{Result, StorageError, PAGE_SIZE};

/// Maximum entries per HDoV node (must match [`crate::node::MAX_ENTRIES`]).
pub(crate) const VPAGE_CAPACITY: usize = crate::node::MAX_ENTRIES;

/// Fixed V-page size in bytes: 4-byte count header + capacity × 8-byte
/// V-entries.
pub const VPAGE_SIZE: usize = 4 + VPAGE_CAPACITY * 8;

/// V-pages per disk page.
pub const VPAGES_PER_DISK_PAGE: usize = PAGE_SIZE / VPAGE_SIZE;

/// The view-variant data of one node entry: `VD = (DoV, NVO)` (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VEntry {
    /// Degree of visibility of the entry's subtree (or object) in `[0, 1]`.
    pub dov: f32,
    /// Number of visible objects below the entry (1 for a visible object).
    pub nvo: u32,
}

impl VEntry {
    /// An invisible entry.
    pub const HIDDEN: VEntry = VEntry { dov: 0.0, nvo: 0 };

    /// True if anything under this entry is visible.
    #[inline]
    pub fn visible(&self) -> bool {
        self.dov > 0.0
    }
}

/// One node's V-entries for one cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VPage {
    /// V-entries, aligned with the node's entry order.
    pub entries: Vec<VEntry>,
}

impl VPage {
    /// Creates a V-page from entries.
    ///
    /// # Panics
    /// Panics when more entries than the node capacity are supplied.
    pub fn new(entries: Vec<VEntry>) -> Self {
        assert!(entries.len() <= VPAGE_CAPACITY, "V-page overflow");
        VPage { entries }
    }

    /// Total DoV across entries (the node's own DoV, by paper property 2).
    pub fn node_dov(&self) -> f64 {
        self.entries.iter().map(|e| e.dov as f64).sum()
    }

    /// Total NVO across entries.
    pub fn node_nvo(&self) -> u64 {
        self.entries.iter().map(|e| e.nvo as u64).sum()
    }

    /// True if any entry is visible.
    pub fn any_visible(&self) -> bool {
        self.entries.iter().any(VEntry::visible)
    }

    /// Serializes into exactly [`VPAGE_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_sized(VPAGE_SIZE)
    }

    /// Serializes into exactly `record_bytes` bytes (`4 + 8·M` for fan-out
    /// `M` V-pages).
    ///
    /// # Panics
    /// Panics when the entries do not fit the record.
    pub fn encode_sized(&self, record_bytes: usize) -> Vec<u8> {
        assert!(
            4 + 8 * self.entries.len() <= record_bytes,
            "{} entries exceed a {record_bytes}-byte V-page record",
            self.entries.len()
        );
        let mut w = ByteWriter::with_capacity(record_bytes);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_f32(e.dov);
            w.put_u32(e.nvo);
        }
        let mut bytes = w.into_bytes();
        bytes.resize(record_bytes, 0);
        bytes
    }

    /// Decodes a V-page from a [`VPAGE_SIZE`]-byte record.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let count = r.get_u32()? as usize;
        if count > VPAGE_CAPACITY {
            return Err(StorageError::Corrupt(format!(
                "V-page count {count} exceeds capacity {VPAGE_CAPACITY}"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(VEntry {
                dov: r.get_f32()?,
                nvo: r.get_u32()?,
            });
        }
        Ok(VPage { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn packing_constants() {
        assert!(VPAGES_PER_DISK_PAGE >= 1);
        assert!(VPAGE_SIZE * VPAGES_PER_DISK_PAGE <= PAGE_SIZE);
    }

    #[test]
    fn round_trip() {
        let vp = VPage::new(vec![
            VEntry { dov: 0.25, nvo: 3 },
            VEntry::HIDDEN,
            VEntry { dov: 0.001, nvo: 1 },
        ]);
        let bytes = vp.encode();
        assert_eq!(bytes.len(), VPAGE_SIZE);
        assert_eq!(VPage::decode(&bytes).unwrap(), vp);
    }

    #[test]
    fn aggregates() {
        let vp = VPage::new(vec![
            VEntry { dov: 0.25, nvo: 3 },
            VEntry { dov: 0.5, nvo: 4 },
        ]);
        assert!((vp.node_dov() - 0.75).abs() < 1e-9);
        assert_eq!(vp.node_nvo(), 7);
        assert!(vp.any_visible());
        assert!(!VPage::new(vec![VEntry::HIDDEN]).any_visible());
        assert!(!VEntry::HIDDEN.visible());
    }

    #[test]
    fn decode_rejects_bad_count() {
        let mut bytes = VPage::new(vec![]).encode();
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        assert!(VPage::decode(&bytes).is_err());
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let _ = VPage::new(vec![VEntry::HIDDEN; VPAGE_CAPACITY + 1]);
    }
}
