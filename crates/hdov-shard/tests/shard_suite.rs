//! The sharding contract (ISSUE 10 / DESIGN.md §17):
//!
//! * fault-free sharded answers are **byte-identical** to the unsharded
//!   search — per frame, entry for entry, for 1 shard and for N shards;
//! * the merged frame is deterministic under every shard-reply-order
//!   permutation (proptest);
//! * a shard killed mid-run degrades frames instead of failing them, trips
//!   its breaker, and recovers after revival;
//! * a default-configured router keeps every fault-domain mechanism inert.

use hdov_core::shard::{merge_frames, PathKey, ShardFrame};
use hdov_core::{
    DeltaSearch, HdovBuildConfig, HdovEnvironment, PoolConfig, QueryResult, ResultEntry, ResultKey,
    SharedEnvironment, StorageScheme,
};
use hdov_scene::CityConfig;
use hdov_shard::{
    BreakerState, RouterConfig, ShardChaos, ShardRouter, ShardedConfig, ShardedServer,
};
use hdov_visibility::CellGridConfig;
use hdov_walkthrough::{ServerConfig, Session, SessionKind, SessionServer};
use proptest::prelude::*;

fn shared_env() -> SharedEnvironment {
    let scene = CityConfig::tiny().seed(11).generate();
    let grid_cfg = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    HdovEnvironment::build(
        &scene,
        &grid_cfg,
        HdovBuildConfig::fast_test(),
        StorageScheme::IndexedVertical,
    )
    .unwrap()
    .into_shared(PoolConfig::default())
}

fn record_sessions(env: &SharedEnvironment, n: usize, frames: usize) -> Vec<Session> {
    let b = env.grid().region();
    (0..n)
        .map(|i| Session::record(b, SessionKind::all()[i % 3], frames, 1000 + i as u64))
        .collect()
}

/// Frame-level byte-identity: every delta frame of a walkthrough routed
/// through `shards` shards carries exactly the entries (keys, levels,
/// polygon counts, cached flags — everything) the unsharded search emits.
fn assert_frames_identical(shards: usize) {
    let env = shared_env();
    let router = ShardRouter::new(&env, shards, RouterConfig::default()).unwrap();
    let session = &record_sessions(&env, 1, 30)[0];

    let mut ctx = env.session();
    let mut delta = DeltaSearch::new();
    let mut lane = router.lane();
    for (i, &vp) in session.viewpoints.iter().enumerate() {
        let (want, _, _) = env.query_delta(&mut ctx, vp, 0.002, &mut delta).unwrap();
        router.route(&mut lane, vp, 0.002);
        let got = lane.merged();
        assert_eq!(
            got.entries(),
            want.entries(),
            "frame {i} diverged through {shards} shard(s)"
        );
        assert_eq!(got.total_polygons(), want.total_polygons());
        assert_eq!(got.degrade().events().len(), want.degrade().events().len());
    }
    assert_eq!(router.totals().degraded_frames, 0);
    assert_eq!(router.totals().breaker_opens, 0);
}

#[test]
fn single_shard_frames_are_byte_identical_to_unsharded() {
    assert_frames_identical(1);
}

#[test]
fn four_shard_frames_are_byte_identical_to_unsharded() {
    assert_frames_identical(4);
}

#[test]
fn seven_shard_frames_are_byte_identical_to_unsharded() {
    // A deliberately lopsided count: the tile grid (3×3 for 7) leaves two
    // tiles empty-handed, exercising uneven ownership.
    assert_frames_identical(7);
}

/// Whole-server equality: the sharded server's per-session answers match
/// the unsharded `SessionServer` on the same recorded walkthroughs.
#[test]
fn sharded_server_answers_match_unsharded_server() {
    let env = shared_env();
    let sessions = record_sessions(&env, 4, 25);
    let plain = SessionServer::new(&env, ServerConfig::default())
        .run(&sessions, 2)
        .unwrap();
    let router = ShardRouter::new(&env, 4, RouterConfig::default()).unwrap();
    let sharded = ShardedServer::new(&router, ShardedConfig::default())
        .run(&sessions, 2)
        .unwrap();
    assert_eq!(sharded.shard_degraded_frames, 0);
    assert_eq!(sharded.shard_timeouts, 0);
    assert_eq!(sharded.hedged_reads, 0);
    assert_eq!(sharded.breaker_opens, 0);
    for (a, b) in plain.sessions.iter().zip(&sharded.report.sessions) {
        assert_eq!(a.session, b.session);
        assert_eq!(a.total_polygons, b.total_polygons, "session {}", a.session);
        assert_eq!(a.lod_level_sum, b.lod_level_sum, "session {}", a.session);
        assert_eq!(a.lod_entries, b.lod_entries, "session {}", a.session);
        assert_eq!(b.failed_frames, 0);
        assert_eq!(b.degraded_frames, 0);
    }
}

/// The shard-kill drill (ISSUE 10 acceptance): N = 4 shards, one killed
/// mid-run. Zero failed frames, degraded frames observed, the victim's
/// breaker opens, and after revival it re-closes — the fleet heals.
#[test]
fn shard_kill_drill_degrades_and_recovers() {
    let env = shared_env();
    let mut router = ShardRouter::new(&env, 4, RouterConfig::default()).unwrap();
    router.set_chaos(Some(ShardChaos {
        shard: 1,
        kill_at_frame: 10,
        revive_at_frame: 45,
    }));
    let sessions = record_sessions(&env, 3, 40);
    let report = ShardedServer::new(&router, ShardedConfig::default())
        .run(&sessions, 2)
        .unwrap();

    for s in &report.report.sessions {
        assert_eq!(s.failed_frames, 0, "a dead shard must never fail a frame");
        assert_eq!(s.search_ms.len(), 40, "every frame answered");
        assert!(s.total_polygons > 0);
    }
    assert!(
        report.shard_degraded_frames > 0,
        "the outage window must serve covers"
    );
    assert!(report.breaker_opens >= 1, "the victim's breaker must trip");
    assert_eq!(
        router.breaker_state(1),
        BreakerState::Closed,
        "post-revival probes must re-close the breaker"
    );
    for s in [0, 2, 3] {
        assert_eq!(router.breaker_state(s), BreakerState::Closed);
    }
    let t = router.totals();
    assert!(t.degraded_frames > 0);
    assert_eq!(t.timeouts, 0, "liveness faults are not deadline faults");
}

/// Starvation deadline: every sub-query times out, every frame degrades to
/// covers, yet nothing fails and the timeout books balance.
#[test]
fn impossible_deadline_degrades_every_frame() {
    let env = shared_env();
    let router = ShardRouter::new(
        &env,
        4,
        RouterConfig {
            deadline_sim_ms: 0.0,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let sessions = record_sessions(&env, 2, 10);
    let report = ShardedServer::new(&router, ShardedConfig::default())
        .run(&sessions, 1)
        .unwrap();
    assert_eq!(report.shard_degraded_frames, 20, "every frame degrades");
    assert!(report.shard_timeouts > 0);
    for s in &report.report.sessions {
        assert_eq!(s.failed_frames, 0);
        assert!(s.total_polygons > 0, "covers are a real picture");
    }
}

/// Hedged reads: with replicas attached and a hair-trigger hedge threshold,
/// hedges fire, answers stay byte-identical, and nothing degrades.
#[test]
fn hedged_reads_do_not_change_answers() {
    let env = shared_env();
    let plain = ShardRouter::new(&env, 2, RouterConfig::default()).unwrap();
    let hedged = ShardRouter::new_hedged(
        &env,
        2,
        RouterConfig {
            hedge_sim_ms: 0.0,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let session = &record_sessions(&env, 1, 15)[0];
    let mut lane_a = plain.lane();
    let mut lane_b = hedged.lane();
    for &vp in &session.viewpoints {
        plain.route(&mut lane_a, vp, 0.002);
        hedged.route(&mut lane_b, vp, 0.002);
        assert_eq!(lane_a.merged().entries(), lane_b.merged().entries());
    }
    assert!(hedged.totals().hedged > 0, "0ms threshold must hedge");
    assert_eq!(hedged.totals().degraded_frames, 0);
    assert_eq!(plain.totals().hedged, 0, "no replicas, no hedges");
}

/// Global admission: one logical slot per visitor across all shards — the
/// overflow sheds exactly as the unsharded book would.
#[test]
fn global_admission_sheds_overflow_once() {
    let env = shared_env();
    let router = ShardRouter::new(&env, 4, RouterConfig::default()).unwrap();
    let sessions = record_sessions(&env, 5, 8);
    let report = ShardedServer::new(
        &router,
        ShardedConfig {
            admission: Some(hdov_walkthrough::AdmissionConfig::strict(2)),
            ..ShardedConfig::default()
        },
    )
    .run(&sessions, 3)
    .unwrap();
    let shed = report.report.shed_sessions();
    assert!(shed > 0, "3 workers racing 2 global slots must shed");
    assert_eq!(report.report.backpressure.admitted + shed, 5);
    for s in report.report.sessions.iter().filter(|s| s.shed) {
        assert_eq!(s.failed_frames, 0);
        assert_eq!(
            s.page_reads, 0,
            "shed visitors stay off every shard's disks"
        );
        assert!(s.total_polygons > 0);
    }
}

// ---------------------------------------------------------------------------
// Merge determinism under reply-order permutations (satellite 3 proptest).
// ---------------------------------------------------------------------------

fn entry(id: u64) -> ResultEntry {
    ResultEntry {
        key: ResultKey::Object(id),
        level: (id % 4) as usize,
        polygons: 10 + id,
        bytes: 100 + id,
        dov: 0.25,
        cached: false,
    }
}

/// Distinct [`PathKey`]s from a compact index: a two-level path, so sibling
/// and ancestor orderings both occur.
fn key_of(i: usize) -> PathKey {
    PathKey::ROOT.child(0, i / 8).child(1, i % 8)
}

fn merged(frames: &mut [ShardFrame]) -> QueryResult {
    let mut out = QueryResult::default();
    merge_frames(frames, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However entries are scattered across shard slots — and whatever
    /// order each shard's reply filled its slot in — the merged frame is
    /// one fixed, key-sorted sequence.
    #[test]
    fn merge_is_invariant_under_reply_order(
        owners in prop::collection::vec(0usize..5, 1..40),
        seed in prop::collection::vec(0u32..1_000_000, 1..40),
    ) {
        let n = owners.len().min(seed.len());

        // Canonical frames: entry i lives in shard owners[i], slots filled
        // in index order (the DFS order a real sub-query emits).
        let mut canonical: Vec<ShardFrame> = (0..5).map(|_| ShardFrame::new()).collect();
        for i in 0..n {
            canonical[owners[i]].push_for_test(key_of(i), entry(i as u64));
        }
        let want = merged(&mut canonical.clone());

        // A "reply-order permutation": each shard fills its slot in an
        // arbitrary order derived from the seed. The slot-per-shard design
        // plus the stable key sort must erase every trace of it.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (seed[i], i));
        let mut permuted: Vec<ShardFrame> = (0..5).map(|_| ShardFrame::new()).collect();
        for &i in &order {
            permuted[owners[i]].push_for_test(key_of(i), entry(i as u64));
        }
        let got = merged(&mut permuted);

        prop_assert_eq!(got.entries(), want.entries());
        // And the merged order is exactly the global key order.
        let mut keys: Vec<usize> = (0..n).collect();
        keys.sort_by_key(|&i| key_of(i));
        let by_key: Vec<ResultEntry> = keys.into_iter().map(|i| entry(i as u64)).collect();
        prop_assert_eq!(want.entries(), &by_key[..]);
    }

    /// Duplicate keys (possible only under multi-shard faults) resolve by
    /// shard order — the stable-sort tiebreak — never by completion order.
    #[test]
    fn merge_breaks_duplicate_keys_by_shard_order(dup in 0usize..16) {
        let mut frames: Vec<ShardFrame> = (0..3).map(|_| ShardFrame::new()).collect();
        let mut a = entry(7);
        a.level = 0;
        let mut b = entry(7);
        b.level = 3;
        frames[0].push_for_test(key_of(dup), a);
        frames[2].push_for_test(key_of(dup), b);
        let out = merged(&mut frames);
        prop_assert_eq!(out.entries().len(), 2);
        prop_assert_eq!(out.entries()[0].level, 0, "shard 0's copy first");
        prop_assert_eq!(out.entries()[1].level, 3);
    }
}
