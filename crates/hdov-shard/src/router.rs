//! The shard router: fan out, survive, merge (DESIGN.md §17).
//!
//! [`ShardRouter`] fronts one engine per spatial tile — each engine a fork
//! of the same frozen [`SharedEnvironment`] with its own pools, so a fault
//! plan armed on one shard's pools cannot touch another's. Per frame it:
//!
//! 1. maps the visitor's cell to its *fan-out mask* — the home tile plus
//!    every shard that can contribute an entry for this cell (precomputed
//!    by [`ShardPlan`] from the ground-truth visible set),
//! 2. runs the pruned sharded search on each fanned-out shard, guarded by
//!    that shard's circuit breaker, a simulated per-request deadline, a
//!    deterministic retry budget, and (optionally) a hedged read to the
//!    shard's replica engine,
//! 3. merges the per-shard frames into one deterministic
//!    [`QueryResult`] — stable object order
//!    independent of shard completion order.
//!
//! A shard that is tripped, timed out, or dead past its retries contributes
//! its precomputed coarse cover instead of failing the frame
//! ([`DegradeCause::ShardUnavailable`](hdov_core::DegradeCause)); the
//! router never returns an error for a routable frame.
//!
//! All robustness accounting is simulated-time and deterministic: deadlines
//! compare *simulated* search milliseconds, retries are instant (a retry
//! against a dead engine models the network timeout the real system would
//! pay — the simulated clock, like the paper's, only charges I/O), and the
//! breaker counts requests, not seconds.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::tile::TileMap;
use hdov_core::shard::{merge_frames, search_shard_into_budgeted, ShardFrame, ShardPlan};
use hdov_core::{DeltaSearch, QueryBudget, QueryResult, SessionCtx, SharedEnvironment};
use hdov_geom::Vec3;
use hdov_obs::Counter;
use hdov_storage::{ReplicaHealth, Result};
use hdov_visibility::CellId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Router tuning. The defaults keep every fault-domain mechanism inert:
/// infinite deadline, no hedging, and a breaker that a fault-free run never
/// feeds a failure — a default-configured fan-out is byte-identical to the
/// unsharded search.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Per-sub-query deadline in *simulated* milliseconds; a sub-query
    /// whose simulated search time exceeds it is treated as abandoned
    /// (`shard_timeouts`) and the shard degrades for that frame.
    pub deadline_sim_ms: f64,
    /// Deterministic retry attempts after a failed sub-query (dead engine
    /// or storage error), before the shard degrades or hedges.
    pub retries: u32,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Simulated search time above which a *successful* primary sub-query
    /// is hedged to the shard's replica engine (when one is attached): the
    /// faster of the two answers wins. `INFINITY` never hedges.
    pub hedge_sim_ms: f64,
    /// Per-sub-query traversal budget (passed through to the shard search).
    pub budget: QueryBudget,
    /// Batched V-page prefetch on cell entry (as in the unsharded path).
    pub prefetch: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            deadline_sim_ms: f64::INFINITY,
            retries: 1,
            breaker: BreakerConfig::default(),
            hedge_sim_ms: f64::INFINITY,
            budget: QueryBudget::UNLIMITED,
            prefetch: true,
        }
    }
}

/// A deterministic chaos schedule: kill one shard at a global frame index,
/// revive it at another (`u64::MAX` = never). Frame indices count every
/// routed frame across all sessions, in routing order.
#[derive(Debug, Clone, Copy)]
pub struct ShardChaos {
    /// The shard to kill.
    pub shard: usize,
    /// Global frame index at which the shard dies.
    pub kill_at_frame: u64,
    /// Global frame index at which it comes back.
    pub revive_at_frame: u64,
}

/// One shard: a private-pool fork of the frozen environment, its optional
/// hedge replica, and a liveness flag the chaos schedule (or an operator)
/// flips. A dead engine refuses queries; its in-memory directories stay
/// readable, which is exactly what serving the coarse cover needs.
pub struct ShardEngine {
    env: SharedEnvironment,
    replica: Option<SharedEnvironment>,
    alive: AtomicBool,
}

impl ShardEngine {
    fn new(env: SharedEnvironment, replica: Option<SharedEnvironment>) -> ShardEngine {
        ShardEngine {
            env,
            replica,
            alive: AtomicBool::new(true),
        }
    }

    /// The shard's frozen environment.
    pub fn env(&self) -> &SharedEnvironment {
        &self.env
    }

    /// The hedge replica, when attached.
    pub fn replica(&self) -> Option<&SharedEnvironment> {
        self.replica.as_ref()
    }

    /// Is the engine accepting queries?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Stops the engine: subsequent sub-queries fail until [`revive`](Self::revive).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// Restarts the engine.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Relaxed);
    }
}

/// Per-visitor routing state: one cursor set per shard (plus one per
/// replica), the per-shard frame slots, the merged frame, and the delta
/// resident set — everything a visitor carries between frames.
pub struct SessionLane {
    ctxs: Vec<SessionCtx>,
    hedge_ctxs: Vec<SessionCtx>,
    frames: Vec<ShardFrame>,
    merged: QueryResult,
    delta: DeltaSearch,
}

impl SessionLane {
    /// The most recent merged frame.
    pub fn merged(&self) -> &QueryResult {
        &self.merged
    }

    /// The visitor's delta resident set.
    pub fn delta(&self) -> &DeltaSearch {
        &self.delta
    }
}

/// What one routed frame cost and survived.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteStats {
    /// Simulated search time of the frame in ms: the **max** over the
    /// fanned-out sub-queries — the fan-out is parallel, so the frame waits
    /// for the slowest shard, not the sum.
    pub search_ms: f64,
    /// Simulated page reads summed over the sub-queries.
    pub page_reads: u64,
    /// Shards fanned out to.
    pub fanout: u32,
    /// Shards that contributed their coarse cover instead of a live answer.
    pub degraded_shards: u32,
    /// Sub-queries abandoned past the simulated deadline.
    pub timeouts: u32,
    /// Hedged sub-queries issued to replica engines.
    pub hedged: u32,
}

/// Aggregate router counters since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterTotals {
    /// Frames routed.
    pub frames: u64,
    /// Frames with at least one shard served from its cover.
    pub degraded_frames: u64,
    /// Sub-queries abandoned past the deadline.
    pub timeouts: u64,
    /// Hedged sub-queries issued.
    pub hedged: u64,
    /// Breaker open transitions.
    pub breaker_opens: u64,
}

/// The resilient session router over a set of tile shards.
pub struct ShardRouter {
    engines: Vec<ShardEngine>,
    plan: ShardPlan,
    tiles: TileMap,
    cfg: RouterConfig,
    breakers: Vec<CircuitBreaker>,
    chaos: Option<ShardChaos>,
    frames_routed: AtomicU64,
    degraded_frames: AtomicU64,
    timeouts: AtomicU64,
    hedged: AtomicU64,
    breaker_opens: AtomicU64,
}

impl ShardRouter {
    /// Builds a router over `shards` tile shards of `base`: the tile map
    /// from the grid, the ownership plan from one tree walk, then one
    /// private-pool engine fork per shard (cold pools — each shard is its
    /// own fault domain). With `hedge`, each shard also gets a replica
    /// engine for hedged reads.
    pub fn new(base: &SharedEnvironment, shards: usize, cfg: RouterConfig) -> Result<ShardRouter> {
        Self::build(base, shards, cfg, false)
    }

    /// [`new`](Self::new) with a hedge replica engine per shard.
    pub fn new_hedged(
        base: &SharedEnvironment,
        shards: usize,
        cfg: RouterConfig,
    ) -> Result<ShardRouter> {
        Self::build(base, shards, cfg, true)
    }

    fn build(
        base: &SharedEnvironment,
        shards: usize,
        cfg: RouterConfig,
        hedge: bool,
    ) -> Result<ShardRouter> {
        let tiles = TileMap::new(base.grid(), shards);
        let grid = base.grid();
        let plan = ShardPlan::build(base, shards, |_, center| {
            tiles.shard_of_cell(grid.clamped_cell_of(center))
        })?;
        let engines = (0..shards)
            .map(|_| {
                ShardEngine::new(
                    base.fork_with_private_pools(),
                    hedge.then(|| base.fork_with_private_pools()),
                )
            })
            .collect();
        let breakers = (0..shards)
            .map(|_| CircuitBreaker::new(cfg.breaker))
            .collect();
        Ok(ShardRouter {
            engines,
            plan,
            tiles,
            cfg,
            breakers,
            chaos: None,
            frames_routed: AtomicU64::new(0),
            degraded_frames: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            hedged: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
        })
    }

    /// Installs (or clears) the chaos schedule. Set before routing.
    pub fn set_chaos(&mut self, chaos: Option<ShardChaos>) {
        if let Some(c) = chaos {
            assert!(c.shard < self.engines.len(), "chaos shard out of range");
        }
        self.chaos = chaos;
    }

    /// The shard engines, indexed by shard id.
    pub fn engines(&self) -> &[ShardEngine] {
        &self.engines
    }

    /// The ownership plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The tile map.
    pub fn tiles(&self) -> &TileMap {
        &self.tiles
    }

    /// Shard `shard`'s breaker state.
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.breakers[shard].state()
    }

    /// Counters since construction.
    pub fn totals(&self) -> RouterTotals {
        RouterTotals {
            frames: self.frames_routed.load(Ordering::Relaxed),
            degraded_frames: self.degraded_frames.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hedged: self.hedged.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
        }
    }

    /// Replica-set health merged over every shard engine's pools (and
    /// hedge replicas) — the cross-shard view of the PR 9 self-healing
    /// counters.
    pub fn storage_health(&self) -> ReplicaHealth {
        let mut health = ReplicaHealth::default();
        for e in &self.engines {
            health.merge(&e.env.storage_health());
            if let Some(r) = &e.replica {
                health.merge(&r.storage_health());
            }
        }
        health
    }

    /// A fresh per-visitor lane.
    pub fn lane(&self) -> SessionLane {
        let n = self.engines.len();
        SessionLane {
            ctxs: self.engines.iter().map(|e| e.env.session()).collect(),
            hedge_ctxs: self.engines.iter().map(|e| e.env.session()).collect(),
            frames: (0..n).map(|_| ShardFrame::new()).collect(),
            merged: QueryResult::default(),
            delta: DeltaSearch::new(),
        }
    }

    /// Routes one delta frame for the visitor at `viewpoint`: fan out,
    /// guard, merge into `lane.merged()`, fold into the delta resident set.
    pub fn route(&self, lane: &mut SessionLane, viewpoint: Vec3, eta: f64) -> RouteStats {
        let cell = self.engines[0].env.cell_of(viewpoint);
        self.route_cell(lane, cell, eta)
    }

    /// [`route`](Self::route) by cell id.
    pub fn route_cell(&self, lane: &mut SessionLane, cell: CellId, eta: f64) -> RouteStats {
        let frame_no = self.frames_routed.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.chaos {
            // fetch_add hands each frame index to exactly one caller, so
            // kill and revive each fire exactly once even under threads.
            if frame_no == c.kill_at_frame {
                self.engines[c.shard].kill();
            }
            if frame_no == c.revive_at_frame {
                self.engines[c.shard].revive();
            }
        }

        let mask = self.plan.cell_mask(cell) | (1u64 << self.tiles.shard_of_cell(cell));
        let skip = lane.delta.skip_map();
        let mut rs = RouteStats::default();

        for s in 0..self.engines.len() {
            if mask & (1u64 << s) == 0 {
                lane.frames[s].clear();
                continue;
            }
            rs.fanout += 1;
            self.sub_query(lane, s, cell, eta, &skip, &mut rs);
        }

        merge_frames(&mut lane.frames, &mut lane.merged);
        lane.delta.apply(&lane.merged);

        if rs.degraded_shards > 0 {
            self.degraded_frames.fetch_add(1, Ordering::Relaxed);
            hdov_obs::add(Counter::ShardDegradedFrames, 1);
        }
        rs
    }

    /// One shard's guarded sub-query: breaker gate → primary (with retries
    /// and deadline) → hedge → coarse cover. Leaves `lane.frames[s]`
    /// holding the shard's contribution no matter what failed.
    fn sub_query(
        &self,
        lane: &mut SessionLane,
        s: usize,
        cell: CellId,
        eta: f64,
        skip: &std::collections::HashMap<hdov_core::ResultKey, usize>,
        rs: &mut RouteStats,
    ) {
        let engine = &self.engines[s];
        let breaker = &self.breakers[s];
        let mut detail = String::new();
        let mut primary_ms: Option<f64> = None;

        if breaker.allow() {
            for _attempt in 0..=self.cfg.retries {
                if !engine.is_alive() {
                    detail = format!("shard {s} engine down");
                    continue; // deterministic retry: instant in simulated time
                }
                match search_shard_into_budgeted(
                    &engine.env,
                    &mut lane.ctxs[s],
                    &self.plan,
                    s,
                    &mut lane.frames[s],
                    cell,
                    eta,
                    Some(skip),
                    self.cfg.prefetch,
                    self.cfg.budget,
                ) {
                    Ok(stats) => {
                        let ms = stats.search_time_ms();
                        if ms > self.cfg.deadline_sim_ms {
                            // Abandoned reply: the same deterministic query
                            // would bust the same deadline, so no retry.
                            rs.timeouts += 1;
                            self.timeouts.fetch_add(1, Ordering::Relaxed);
                            hdov_obs::add(Counter::ShardTimeouts, 1);
                            detail = format!(
                                "shard {s} deadline exceeded ({ms:.3} ms > {:.3} ms)",
                                self.cfg.deadline_sim_ms
                            );
                            break;
                        }
                        rs.page_reads += stats.total_io().page_reads;
                        primary_ms = Some(ms);
                        break;
                    }
                    Err(e) => detail = format!("shard {s}: {e}"),
                }
            }
            match primary_ms {
                Some(_) => breaker.record_success(),
                None => {
                    if breaker.record_failure() {
                        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                        hdov_obs::add(Counter::BreakerOpens, 1);
                    }
                }
            }
        } else {
            detail = format!("shard {s} circuit open");
        }

        // Hedge: on a slow primary the faster of the two identical answers
        // wins; on a failed/denied primary the replica is the serve path.
        let hedge_due = match primary_ms {
            Some(ms) => ms > self.cfg.hedge_sim_ms,
            None => true,
        };
        if hedge_due {
            if let Some(replica) = &engine.replica {
                rs.hedged += 1;
                self.hedged.fetch_add(1, Ordering::Relaxed);
                hdov_obs::add(Counter::HedgedReads, 1);
                // Rerunning into the same slot is safe: frozen data, so the
                // replica's entries are identical to the primary's.
                if let Ok(stats) = search_shard_into_budgeted(
                    replica,
                    &mut lane.hedge_ctxs[s],
                    &self.plan,
                    s,
                    &mut lane.frames[s],
                    cell,
                    eta,
                    Some(skip),
                    self.cfg.prefetch,
                    self.cfg.budget,
                ) {
                    let ms = stats.search_time_ms();
                    if primary_ms.is_none() {
                        rs.page_reads += stats.total_io().page_reads;
                    }
                    primary_ms = Some(primary_ms.map_or(ms, |p| p.min(ms)));
                }
            }
        }

        match primary_ms {
            Some(ms) => rs.search_ms = rs.search_ms.max(ms),
            None => {
                // Tripped, timed out, or dead past retries and hedges: the
                // shard's tiles arrive at the coarsest internal LoD instead
                // of failing the frame.
                self.plan
                    .cover_frame(&engine.env, s, &detail, &mut lane.frames[s]);
                rs.degraded_shards += 1;
            }
        }
    }
}
