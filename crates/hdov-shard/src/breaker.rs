//! Per-shard circuit breaker (DESIGN.md §17).
//!
//! A dead or flapping shard must not eat every visitor's retry budget on
//! every frame. The breaker is the classic three-state machine, made
//! deterministic for the harness: *time* is counted in **denied requests**
//! rather than wall seconds, so a fixed request sequence produces an exact
//! state trace (unit-tested below) and the chaos drill's recovery point is
//! a pure function of the frame schedule.
//!
//! * **Closed** — requests flow; `trip_after` *consecutive* failures open
//!   the breaker.
//! * **Open** — requests are denied without touching the shard (the router
//!   serves the shard's coarse cover instead). After `cooldown` denials the
//!   breaker moves to half-open.
//! * **Half-open** — the next request is a probe. Success closes the
//!   breaker; failure re-opens it and restarts the cooldown.

use std::sync::Mutex;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive sub-query failures that trip the breaker open.
    pub trip_after: u32,
    /// Denied requests an open breaker absorbs before probing half-open.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            cooldown: 8,
        }
    }
}

/// Breaker state, in increasing order of distrust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Probing: one request at a time decides reopen vs close.
    HalfOpen,
    /// Tripped: requests are denied and served from the coarse cover.
    Open,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    denials: u32,
}

/// One shard's breaker. Thread-safe: many visitor sessions consult the
/// same breaker concurrently (a Mutex over three words — uncontended in
/// practice next to the query work it guards).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with tuning `cfg`.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                denials: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current state (diagnostics; racy by nature under concurrency).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// May a request go to the shard right now? Denials while open count
    /// toward the cooldown; the denial that exhausts it flips the breaker
    /// to half-open and is itself allowed through as the probe.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                inner.denials += 1;
                if inner.denials >= self.cfg.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// An allowed sub-query answered: reset to closed.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.denials = 0;
    }

    /// An allowed sub-query failed. Returns `true` when this failure
    /// transitioned the breaker to open (the caller records the
    /// `breaker_opens` counter exactly once per transition).
    pub fn record_failure(&self) -> bool {
        let mut inner = self.lock();
        inner.consecutive_failures += 1;
        let trip = match inner.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.cfg.trip_after,
            BreakerState::Open => false, // concurrent failure while already tripped
        };
        if trip {
            inner.state = BreakerState::Open;
            inner.denials = 0;
        }
        trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown: 4,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = breaker();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success(); // streak broken
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_denials_lead_to_half_open_probe() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Three denials inside the cooldown, the fourth is the probe.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "cooldown exhausted: probe goes through");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure();
        }
        for _ in 0..3 {
            assert!(!b.allow());
        }
        assert!(b.allow()); // probe
        assert!(
            b.record_failure(),
            "failed probe is a fresh open transition"
        );
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..3 {
            assert!(!b.allow());
        }
        assert!(b.allow(), "cooldown counts from the reopen");
    }

    #[test]
    fn exact_state_trace_is_deterministic() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            cooldown: 2,
        });
        assert!(b.allow());
        assert!(!b.record_failure());
        assert!(b.allow());
        assert!(b.record_failure()); // trip 1
        assert!(!b.allow()); // denial 1
        assert!(b.allow()); // denial 2 → probe
        assert!(b.record_failure()); // trip 2 (reopen)
        assert!(!b.allow());
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
