//! Fault-domain sharding for HDoV scenes (DESIGN.md §17).
//!
//! The paper serves one HDoV-tree from one machine; this crate runs one
//! engine per spatial tile — each its own
//! [`SharedEnvironment`](hdov_core::SharedEnvironment) fork with private
//! pools and its own fault plan — behind a resilient
//! [`ShardRouter`]:
//!
//! * [`TileMap`] carves the viewing-cell grid into spatial tiles, one per
//!   shard; objects belong to the tile holding their MBR center.
//! * [`ShardRouter`] maps a visitor's cell to its home shard plus every
//!   visibility-overlapping shard, fans the delta query out, and merges the
//!   per-shard frames into one deterministic frame (object order
//!   independent of shard completion order — the data plane lives in
//!   [`hdov_core::shard`]).
//! * [`CircuitBreaker`] trips a shard after consecutive failures and probes
//!   it back half-open; deadlines, retries, and hedged reads are all
//!   deterministic (simulated time, request-counted cooldowns).
//! * A tripped, timed-out, or dead shard contributes its tiles at the
//!   coarsest internal LoD
//!   ([`DegradeCause::ShardUnavailable`](hdov_core::DegradeCause)) instead
//!   of failing the frame.
//! * [`ShardedServer`] drives recorded sessions through the router with a
//!   **global** admission book (one logical slot per visitor across all
//!   shards) and per-visitor η control fed by the merged frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod router;
pub mod server;
pub mod tile;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use router::{
    RouteStats, RouterConfig, RouterTotals, SessionLane, ShardChaos, ShardEngine, ShardRouter,
};
pub use server::{ShardedConfig, ShardedReport, ShardedServer};
pub use tile::TileMap;
