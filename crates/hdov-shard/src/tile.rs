//! The tile map: which shard owns which viewing cells.
//!
//! The city grid is carved into a near-square lattice of spatial tiles, one
//! tile per shard, so each shard's objects and V-pages are spatially
//! coherent (the decomposition argument of the urban-LoD and viewshed work
//! cited in PAPERS.md: city scenes split cleanly along tile boundaries).
//! The map is a pure function of `(grid resolution, shard count)` — every
//! router over the same environment derives the same ownership.

use hdov_geom::Vec3;
use hdov_visibility::{CellGrid, CellId};

/// Assignment of viewing cells (and, through them, objects) to shards.
#[derive(Debug, Clone)]
pub struct TileMap {
    shards: usize,
    tiles_x: usize,
    tiles_y: usize,
    cell_shard: Vec<u32>,
}

impl TileMap {
    /// Carves `grid` into `shards` spatial tiles: a `tx × ty` lattice with
    /// `tx = ceil(√shards)` columns, rows to cover the rest, and the last
    /// tile absorbing any remainder, each cell mapped to the tile containing
    /// it.
    pub fn new(grid: &CellGrid, shards: usize) -> TileMap {
        assert!(shards >= 1, "need at least one shard");
        let (nx, ny) = grid.resolution();
        let tiles_x = (shards as f64).sqrt().ceil() as usize;
        let tiles_y = shards.div_ceil(tiles_x);
        let cell_shard = (0..grid.cell_count())
            .map(|c| {
                let ix = c % nx;
                let iy = c / nx;
                let tx = (ix * tiles_x / nx).min(tiles_x - 1);
                let ty = (iy * tiles_y / ny).min(tiles_y - 1);
                ((ty * tiles_x + tx).min(shards - 1)) as u32
            })
            .collect();
        TileMap {
            shards,
            tiles_x,
            tiles_y,
            cell_shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The tile lattice `(columns, rows)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        (self.tiles_x, self.tiles_y)
    }

    /// The shard owning viewing cell `cell`.
    pub fn shard_of_cell(&self, cell: CellId) -> usize {
        self.cell_shard[cell as usize] as usize
    }

    /// The home shard of a viewpoint (via the grid's clamped cell lookup).
    pub fn shard_of_point(&self, grid: &CellGrid, p: Vec3) -> usize {
        self.shard_of_cell(grid.clamped_cell_of(p))
    }

    /// Cells owned by `shard`.
    pub fn cells_of(&self, shard: usize) -> impl Iterator<Item = CellId> + '_ {
        self.cell_shard
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s as usize == shard)
            .map(|(c, _)| c as CellId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_geom::Aabb;
    use hdov_visibility::CellGridConfig;

    fn grid(nx: usize, ny: usize) -> CellGrid {
        CellGridConfig {
            region: Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(100.0, 100.0, 10.0)),
            nx,
            ny,
        }
        .build()
    }

    #[test]
    fn every_cell_gets_a_valid_shard_and_every_shard_gets_cells() {
        for shards in 1..=6 {
            let g = grid(6, 6);
            let t = TileMap::new(&g, shards);
            let mut seen = vec![false; shards];
            for c in 0..g.cell_count() {
                let s = t.shard_of_cell(c as CellId);
                assert!(s < shards);
                seen[s] = true;
            }
            assert!(
                seen.iter().all(|&x| x),
                "{shards} shards over a 6x6 grid must all own cells"
            );
        }
    }

    #[test]
    fn tiles_are_spatially_contiguous_column_bands() {
        let g = grid(8, 8);
        let t = TileMap::new(&g, 4); // 2×2 tile lattice
        assert_eq!(t.tile_grid(), (2, 2));
        // Four quadrants: cell (0,0) and (7,7) land on different shards,
        // neighbors within a quadrant share one.
        assert_eq!(t.shard_of_cell(0), t.shard_of_cell(1));
        assert_ne!(t.shard_of_cell(0), t.shard_of_cell(7));
        assert_ne!(t.shard_of_cell(0), t.shard_of_cell(63));
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = grid(5, 3);
        let t = TileMap::new(&g, 1);
        for c in 0..g.cell_count() {
            assert_eq!(t.shard_of_cell(c as CellId), 0);
        }
    }
}
