//! The sharded session server: many visitors, many shards, one admission
//! book (DESIGN.md §17).
//!
//! [`ShardedServer`] is the sharded counterpart of
//! [`SessionServer`](hdov_walkthrough::SessionServer): the same worker-pool
//! shape (atomic claim queue, first-wave barrier, scoped threads), the same
//! per-session outcome bookkeeping — but every frame goes through the
//! [`ShardRouter`] instead of a single engine, and admission is **global**:
//! a visitor spanning several shards holds ONE logical slot in the
//! router-level admission book, not one per shard (the DESIGN.md §12
//! cross-engine follow-on). The η controller stays per-visitor, driven by
//! the *merged* frame's `(max sub-query search time, total polygons)` — the
//! sharded reading of the paper's Eq. 4 cost estimate.
//!
//! Fault-free, a single-shard `ShardedServer` produces byte-identical
//! answers to the unsharded `SessionServer` (pinned by this crate's tests
//! and the CI `shard-chaos` job); under faults, shards degrade to their
//! coarse covers and every session still completes every frame.

use crate::router::{SessionLane, ShardRouter};
use hdov_core::ResultKey;
use hdov_obs::{Counter, Hist};
use hdov_storage::Result;
use hdov_walkthrough::control::estimate_cell_polygons;
use hdov_walkthrough::{
    AdmissionConfig, EtaAction, EtaControlConfig, EtaController, FrameModel, ServerReport, Session,
    SessionOutcome, SessionSlots,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Same fidelity ladder as the unsharded server: internal LoDs rank
/// coarser than any object level (object chains are ≤ 4 levels deep
/// throughout the repo).
const INTERNAL_LOD_RANK_BASE: u64 = 4;

fn served_lod_rank(key: ResultKey, level: usize) -> u64 {
    match key {
        ResultKey::Object(_) => level as u64,
        ResultKey::Internal(_) => INTERNAL_LOD_RANK_BASE + level as u64,
    }
}

/// Sharded-server tuning. Like the unsharded
/// [`ServerConfig`](hdov_walkthrough::ServerConfig), every overload feature
/// defaults off.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Static DoV threshold η (ignored when [`control`](Self::control) is
    /// active).
    pub eta: f64,
    /// Render-cost model for per-frame times.
    pub frame_model: FrameModel,
    /// Closed-loop AIMD η control per visitor, fed by the merged frame.
    pub control: Option<EtaControlConfig>,
    /// Warm-start the controller's first-frame η from the Eq. 4 polygon
    /// estimate of the visitor's starting cell instead of the cold
    /// `eta_initial` (no effect without [`control`](Self::control)).
    pub warm_start: bool,
    /// Global admission book: ONE logical slot per visitor across all
    /// shards; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            eta: 0.002,
            frame_model: FrameModel::PAPER_ERA,
            control: None,
            warm_start: false,
            admission: None,
        }
    }
}

/// A [`ServerReport`] plus the router's fault-domain counters.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The per-session outcomes and aggregates, in the same shape as the
    /// unsharded server's report.
    pub report: ServerReport,
    /// Frames in which at least one shard was served from its coarse cover.
    pub shard_degraded_frames: u64,
    /// Sub-queries abandoned past the router deadline.
    pub shard_timeouts: u64,
    /// Hedged sub-queries issued to replica engines.
    pub hedged_reads: u64,
    /// Breaker open transitions during the run.
    pub breaker_opens: u64,
}

/// Drives recorded sessions concurrently through a [`ShardRouter`].
pub struct ShardedServer<'a> {
    router: &'a ShardRouter,
    cfg: ShardedConfig,
}

impl<'a> ShardedServer<'a> {
    /// A server routing through `router` with configuration `cfg`.
    pub fn new(router: &'a ShardRouter, cfg: ShardedConfig) -> Self {
        ShardedServer { router, cfg }
    }

    /// Runs every session to completion on `threads` scoped workers — the
    /// same claim-queue/barrier discipline as the unsharded server, with
    /// the admission book held at the router layer.
    pub fn run(&self, sessions: &[Session], threads: usize) -> Result<ShardedReport> {
        let workers = threads.clamp(1, sessions.len().max(1));
        let next = AtomicUsize::new(0);
        let slots = self.cfg.admission.map(|a| SessionSlots::new(a.slots));
        let barrier = std::sync::Barrier::new(workers);
        let totals0 = self.router.totals();
        let start = Instant::now();

        let per_worker: Vec<Vec<SessionOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let slots = slots.as_ref();
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        let first = next.fetch_add(1, Ordering::Relaxed);
                        let admitted = (first < sessions.len()).then(|| self.try_admit(slots));
                        barrier.wait();
                        if let Some(adm) = admitted {
                            done.push(self.finish_claim(adm, slots, first, &sessions[first]));
                        }
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= sessions.len() {
                                break done;
                            }
                            let adm = self.try_admit(slots);
                            done.push(self.finish_claim(adm, slots, i, &sessions[i]));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded session worker panicked"))
                .collect()
        });

        let wall_seconds = start.elapsed().as_secs_f64();
        let mut outcomes = Vec::with_capacity(sessions.len());
        for r in per_worker {
            outcomes.extend(r);
        }
        outcomes.sort_by_key(|o| o.session);
        let totals = self.router.totals();
        Ok(ShardedReport {
            report: ServerReport {
                sessions: outcomes,
                wall_seconds,
                threads: workers,
                backpressure: slots.map(|s| s.stats()).unwrap_or_default(),
                health: self.router.storage_health(),
            },
            shard_degraded_frames: totals.degraded_frames - totals0.degraded_frames,
            shard_timeouts: totals.timeouts - totals0.timeouts,
            hedged_reads: totals.hedged - totals0.hedged,
            breaker_opens: totals.breaker_opens - totals0.breaker_opens,
        })
    }

    fn try_admit(&self, slots: Option<&SessionSlots>) -> Option<bool> {
        match (slots, self.cfg.admission) {
            (Some(slots), Some(adm)) => Some(slots.try_acquire(adm.queue_timeout)),
            _ => None,
        }
    }

    fn finish_claim(
        &self,
        admitted: Option<bool>,
        slots: Option<&SessionSlots>,
        index: usize,
        session: &Session,
    ) -> SessionOutcome {
        match admitted {
            Some(false) => self.drive_shed(index, session),
            Some(true) => {
                let out = self.drive(index, session);
                if let Some(slots) = slots {
                    slots.release();
                }
                out
            }
            None => self.drive(index, session),
        }
    }

    /// The controller for one visitor: warm-started from the Eq. 4 polygon
    /// estimate of their starting cell when configured.
    fn controller_for(&self, session: &Session) -> Option<EtaController> {
        let cfg = self.cfg.control?;
        if self.cfg.warm_start && !session.viewpoints.is_empty() {
            let env = self.router.engines()[0].env();
            let cell = env.cell_of(session.viewpoints[0]);
            Some(EtaController::warm_start(
                cfg,
                estimate_cell_polygons(env, cell),
            ))
        } else {
            Some(EtaController::new(cfg))
        }
    }

    /// A shed visitor is served the root's finest internal LoD per frame —
    /// identical to the unsharded shed path (shard 0's directory serves;
    /// all shards share the frozen data, so any would).
    fn drive_shed(&self, index: usize, session: &Session) -> SessionOutcome {
        let tree = self.router.engines()[0].env().tree();
        let root = tree.root_ordinal();
        let level = tree.internal_store().select_level(root as u64, 1.0);
        let h = tree.internal_store().handle(root as u64, level);
        let frames = session.len();
        let frame_ms = self.cfg.frame_model.frame_time_ms(0.0, h.polygons as u64);

        hdov_obs::add(Counter::ShedSessions, 1);
        hdov_obs::add(Counter::SessionsCompleted, 1);
        SessionOutcome {
            session: index,
            search_ms: vec![0.0; frames],
            frame_ms: vec![frame_ms; frames],
            total_polygons: h.polygons as u64 * frames as u64,
            page_reads: 0,
            prefetched_pages: 0,
            degraded_frames: 0,
            failed_frames: 0,
            budget_stops: 0,
            deadline_misses: 0,
            eta_raises: 0,
            eta_drops: 0,
            eta_final: self.cfg.eta,
            shed: true,
            lod_level_sum: (INTERNAL_LOD_RANK_BASE + level as u64) * frames as u64,
            lod_entries: frames as u64,
        }
    }

    /// Replays one admitted visitor: routed delta frame per viewpoint,
    /// merged-frame feedback into the per-visitor η controller.
    ///
    /// Infallible by construction: the router serves unreachable shards
    /// from their coarse covers, so a frame cannot fail while even one
    /// model directory is readable.
    fn drive(&self, index: usize, session: &Session) -> SessionOutcome {
        let mut lane: SessionLane = self.router.lane();
        let mut controller = self.controller_for(session);
        let mut search_ms = Vec::with_capacity(session.len());
        let mut frame_ms = Vec::with_capacity(session.len());
        let mut total_polygons = 0u64;
        let mut page_reads = 0u64;
        let mut degraded_frames = 0u64;
        let mut budget_stops = 0u64;
        let mut deadline_misses = 0u64;
        let mut eta_raises = 0u64;
        let mut eta_drops = 0u64;
        let mut lod_level_sum = 0u64;
        let mut lod_entries = 0u64;

        for &vp in &session.viewpoints {
            let eta = controller.as_ref().map_or(self.cfg.eta, |c| c.eta());
            let wall = hdov_obs::is_enabled().then(Instant::now);
            let rs = self.router.route(&mut lane, vp, eta);
            if let Some(t0) = wall {
                hdov_obs::observe(Hist::WallSearchNs, t0.elapsed().as_nanos() as u64);
            }
            let polygons = lane.merged().total_polygons();
            search_ms.push(rs.search_ms);
            frame_ms.push(self.cfg.frame_model.frame_time_ms(rs.search_ms, polygons));
            total_polygons += polygons;
            page_reads += rs.page_reads;
            if lane.merged().degrade().errors_absorbed() > 0 {
                degraded_frames += 1;
            }
            budget_stops += lane.merged().degrade().budget_stops();
            for e in lane.merged().entries() {
                lod_level_sum += served_lod_rank(e.key, e.level);
                lod_entries += 1;
            }
            if let Some(c) = &mut controller {
                let t = self.cfg.frame_model.frame_time_ms(rs.search_ms, polygons);
                hdov_obs::observe(Hist::SimFrameTimeNs, (t * 1e6) as u64);
                if t > c.target_frame_ms() {
                    deadline_misses += 1;
                    hdov_obs::add(Counter::FrameDeadlineMiss, 1);
                }
                match c.observe(rs.search_ms, polygons) {
                    EtaAction::Raise => {
                        eta_raises += 1;
                        hdov_obs::add(Counter::EtaRaises, 1);
                    }
                    EtaAction::Drop => {
                        eta_drops += 1;
                        hdov_obs::add(Counter::EtaDrops, 1);
                    }
                    EtaAction::Hold => {}
                }
            }
        }
        hdov_obs::add(Counter::SessionsCompleted, 1);
        hdov_obs::add(Counter::SessionPageReads, page_reads);
        SessionOutcome {
            session: index,
            search_ms,
            frame_ms,
            total_polygons,
            page_reads,
            prefetched_pages: 0, // motion prefetch is an unsharded-engine warmup; answers unaffected
            degraded_frames,
            failed_frames: 0,
            budget_stops,
            deadline_misses,
            eta_raises,
            eta_drops,
            eta_final: controller.as_ref().map_or(self.cfg.eta, |c| c.eta()),
            shed: false,
            lod_level_sum,
            lod_entries,
        }
    }
}
