//! A self-contained, offline drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The container that builds this repo has no access to crates.io, so the
//! real `proptest` cannot be vendored. This crate re-implements the pieces
//! the test suites rely on — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, ranges/tuples/`Just`/`prop_oneof!`, `prop::collection::{vec,
//! btree_map}`, and the `prop_assert*`/`prop_assume!` macros — on top of a
//! deterministic SplitMix64 generator.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports the generated inputs verbatim
//!   (every strategy value is `Debug`), plus the seed-deriving test name and
//!   case index, which replays deterministically.
//! * **Deterministic seeding.** Cases are derived from the test's name, so a
//!   failure reproduces on every run and every machine.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` etc., mirroring the upstream module layout.
pub mod prop {
    /// Collection strategies (`vec`, `btree_map`).
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, vec};
    }
}

/// The upstream prelude: strategies, config, and macro re-exports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` header and any number of test functions with
/// `ident in strategy` parameters (trailing commas allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let values = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let case = move |_marker: ()| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                (case(()), values)
            });
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case (the runner draws a replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-of strategy over alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
