//! Value-generation strategies: a deterministic subset of upstream
//! `proptest::strategy`.

use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::Range;

/// Generates values of an associated type from a [`TestRng`].
///
/// Unlike upstream there is no value tree and no shrinking: `generate`
/// returns the value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
    )+};
}

int_range_strategy! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A `Vec` whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` built from up to `size` drawn `(key, value)` pairs
    /// (duplicate keys collapse, matching upstream's "size is an upper
    /// bound" behaviour loosely).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.generate(rng);
            let mut m = BTreeMap::new();
            for _ in 0..n {
                m.insert(self.key.generate(rng), self.value.generate(rng));
            }
            m
        }
    }
}
