//! Deterministic case runner and RNG.

/// Per-test configuration (subset of upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected ([`prop_assume!`](crate::prop_assume)) draws before
    /// the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64: tiny, fast, and plenty uniform for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded draw; the modulo bias at 64 bits is far
        // below anything a test-input generator can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property test: draws cases, retries rejects, panics on the
/// first failure with enough context to replay it.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from the test's name.
    ///
    /// Setting `PROPTEST_RNG_SEED` (a `u64`) mixes an extra seed into every
    /// runner, shifting the whole input stream while staying reproducible —
    /// CI's chaos job uses this to sweep fixed seeds; an unset or
    /// unparsable variable leaves the name-derived default.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(extra) = extra.trim().parse::<u64>() {
                seed ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRunner {
            config,
            name,
            rng: TestRng::new(seed),
        }
    }

    /// Runs `case` until `config.cases` cases pass. `case` returns the
    /// outcome plus a rendering of the drawn inputs for failure reports.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while passed < self.config.cases {
            index += 1;
            let (outcome, values) = case(&mut self.rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "{}: too many prop_assume! rejections ({rejected})",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: property failed at case {index}\n  {msg}\n  inputs: {values}",
                        name = self.name
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
