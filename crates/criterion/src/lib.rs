//! A self-contained, offline drop-in for the subset of the `criterion` API
//! this workspace's benches use.
//!
//! The build container cannot reach crates.io, so the real `criterion`
//! cannot be vendored. This shim keeps `benches/` compiling and useful: each
//! benchmark runs a warm-up pass, then `sample_size` timed samples, and
//! prints the median and min per-iteration time. There are no statistics,
//! plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver (subset of upstream).
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            target_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark time budget samples are fitted into.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.target_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (subset of upstream).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.target_time);
        f(&mut b, input);
        b.report(&name);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.target_time);
        f(&mut b);
        b.report(&name);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Collects timed iterations of a closure.
pub struct Bencher {
    sample_size: usize,
    target_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, target_time: Duration) -> Self {
        Bencher {
            sample_size,
            target_time,
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine`, discarding its output via an implicit sink.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that makes one
        // sample take long enough to time reliably.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget = self.target_time / self.sample_size.max(1) as u32;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = s[s.len() / 2];
        let min = s[0];
        println!(
            "{name:<44} median {:>12}  min {:>12}",
            fmt_ns(median),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (subset of upstream syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(3).0, "3");
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
