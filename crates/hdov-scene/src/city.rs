//! The synthetic city generator.
//!
//! A seeded grid of city blocks separated by streets. Each block holds a
//! sub-grid of slots filled with buildings, with a seeded fraction replaced
//! by towers (tall occluders) or bunny sculptures (small, easily occluded).
//! Streets form the walkable viewpoint space, and the height mixture creates
//! genuine occlusion: near facades hide most of the city from street level,
//! while towers stay visible from far away — the regime the HDoV-tree is
//! designed for.

use crate::object::{ObjectKind, SceneObject};
use crate::prototype::{PrototypeConfig, PrototypeLibrary};
use crate::scene::Scene;
use hdov_geom::sampling::SplitMix64;
use hdov_geom::{Aabb, Vec3};

/// Parameters of the city generator.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Blocks along x.
    pub blocks_x: usize,
    /// Blocks along y.
    pub blocks_y: usize,
    /// Side length of a square block (metres).
    pub block_size: f64,
    /// Street width between blocks (metres).
    pub street_width: f64,
    /// Building slots per block edge (slots per block = `slots²`).
    pub slots: usize,
    /// Fraction of slots holding a bunny sculpture instead of a building.
    pub bunny_fraction: f64,
    /// Fraction of slots holding a tall tower.
    pub tower_fraction: f64,
    /// Prototype library parameters.
    pub prototypes: PrototypeConfig,
    /// Master seed.
    pub seed: u64,
}

impl CityConfig {
    /// A minimal city for unit tests: a few dozen objects, coarse meshes.
    pub fn tiny() -> Self {
        CityConfig {
            blocks_x: 3,
            blocks_y: 3,
            block_size: 60.0,
            street_width: 15.0,
            slots: 2,
            bunny_fraction: 0.15,
            tower_fraction: 0.1,
            prototypes: PrototypeConfig {
                building_variants: 2,
                tower_variants: 1,
                bunny_variants: 1,
                building_detail: 3,
                bunny_subdivisions: 2,
                lod_levels: 3,
                lod_ratio: 0.3,
                seed: 0,
            },
            seed: 0,
        }
    }

    /// A small city for examples and integration tests (~300 objects).
    pub fn small() -> Self {
        CityConfig {
            blocks_x: 6,
            blocks_y: 6,
            slots: 3,
            ..CityConfig::tiny()
        }
    }

    /// The default evaluation city (≈ the paper's default dataset at 1/40
    /// byte scale).
    pub fn default_paper() -> Self {
        CityConfig {
            blocks_x: 20,
            blocks_y: 20,
            block_size: 60.0,
            street_width: 15.0,
            slots: 3,
            bunny_fraction: 0.12,
            tower_fraction: 0.02,
            prototypes: PrototypeConfig::default(),
            seed: 0,
        }
    }

    /// Sets the master seed (also reseeds the prototype library).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.prototypes.seed = seed;
        self
    }

    /// Number of object slots (upper bound on object count).
    pub fn slot_count(&self) -> usize {
        self.blocks_x * self.blocks_y * self.slots * self.slots
    }

    /// Generates the scene.
    pub fn generate(&self) -> Scene {
        let lib = PrototypeLibrary::build(&self.prototypes);
        let mut rng = SplitMix64::new(self.seed ^ 0x63697479); // "city"
        let pitch = self.block_size + self.street_width;
        let slot_size = self.block_size / self.slots as f64;
        let mut objects = Vec::with_capacity(self.slot_count());

        for bx in 0..self.blocks_x {
            for by in 0..self.blocks_y {
                let block_origin = Vec3::new(bx as f64 * pitch, by as f64 * pitch, 0.0);
                for sx in 0..self.slots {
                    for sy in 0..self.slots {
                        let slot_origin = block_origin
                            + Vec3::new(sx as f64 * slot_size, sy as f64 * slot_size, 0.0);
                        let center = slot_origin + Vec3::new(slot_size / 2.0, slot_size / 2.0, 0.0);
                        let draw = rng.next_f64();
                        let (kind, half_xy, height) = if draw < self.bunny_fraction {
                            // Bunny sculpture: 2–6 m.
                            let s = 2.0 + 4.0 * rng.next_f64();
                            (ObjectKind::Bunny, s / 2.0, s)
                        } else if draw < self.bunny_fraction + self.tower_fraction {
                            // Tower: 60–150 m tall, slim.
                            let h = 60.0 + 90.0 * rng.next_f64();
                            (ObjectKind::Tower, slot_size * 0.3, h)
                        } else {
                            // Building: footprint ~70–90 % of the slot,
                            // height mixture biased low.
                            let u = rng.next_f64();
                            let h = if u < 0.75 {
                                8.0 + 14.0 * rng.next_f64()
                            } else {
                                22.0 + 23.0 * rng.next_f64()
                            };
                            let fp = slot_size * (0.35 + 0.1 * rng.next_f64());
                            (ObjectKind::Building, fp, h)
                        };
                        let proto = lib.pick(kind, rng.next_u64());
                        let id = objects.len() as u64;
                        let mbr = match kind {
                            ObjectKind::Bunny => {
                                // Bunnies float just above ground, centred.
                                Aabb::new(
                                    center + Vec3::new(-half_xy, -half_xy, 0.0),
                                    center + Vec3::new(half_xy, half_xy, height),
                                )
                            }
                            _ => Aabb::new(
                                center + Vec3::new(-half_xy, -half_xy, 0.0),
                                center + Vec3::new(half_xy, half_xy, height),
                            ),
                        };
                        objects.push(SceneObject::new(id, kind, proto, mbr));
                    }
                }
            }
        }
        Scene::new(objects, lib)
    }
}

/// The four dataset scales of the paper's Fig. 9 (400 MB → 1.6 GB nominal,
/// scaled 1/40 in real bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPreset {
    /// ~400 MB nominal.
    Nominal400MB,
    /// ~800 MB nominal.
    Nominal800MB,
    /// ~1.2 GB nominal.
    Nominal1200MB,
    /// ~1.6 GB nominal.
    Nominal1600MB,
}

impl DatasetPreset {
    /// All presets, smallest first.
    pub fn all() -> [DatasetPreset; 4] {
        [
            DatasetPreset::Nominal400MB,
            DatasetPreset::Nominal800MB,
            DatasetPreset::Nominal1200MB,
            DatasetPreset::Nominal1600MB,
        ]
    }

    /// Nominal raw-dataset size in megabytes (the paper's axis).
    pub fn nominal_mb(self) -> u64 {
        match self {
            DatasetPreset::Nominal400MB => 400,
            DatasetPreset::Nominal800MB => 800,
            DatasetPreset::Nominal1200MB => 1200,
            DatasetPreset::Nominal1600MB => 1600,
        }
    }

    /// City configuration for this scale. Object count grows linearly with
    /// the nominal size (the byte-per-object cost is constant).
    pub fn config(self) -> CityConfig {
        let base = CityConfig::default_paper();
        let (bx, by) = match self {
            DatasetPreset::Nominal400MB => (10, 10),
            DatasetPreset::Nominal800MB => (14, 14),
            DatasetPreset::Nominal1200MB => (18, 17),
            DatasetPreset::Nominal1600MB => (20, 20),
        };
        CityConfig {
            blocks_x: bx,
            blocks_y: by,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_city_generates() {
        let scene = CityConfig::tiny().generate();
        assert_eq!(scene.len(), CityConfig::tiny().slot_count());
        assert!(!scene.is_empty());
        assert!(scene.bounds().volume() > 0.0);
        assert!(scene.total_polygons() > 0);
    }

    #[test]
    fn deterministic_generation() {
        let a = CityConfig::tiny().seed(5).generate();
        let b = CityConfig::tiny().seed(5).generate();
        assert_eq!(a.objects(), b.objects());
        let c = CityConfig::tiny().seed(6).generate();
        assert_ne!(a.objects(), c.objects());
    }

    #[test]
    fn objects_sit_on_ground() {
        let scene = CityConfig::tiny().generate();
        for o in scene.objects() {
            assert!(o.mbr.min.z.abs() < 1e-9, "object {} floats", o.id);
            assert!(o.mbr.max.z > 0.0);
        }
    }

    #[test]
    fn kind_mixture_present() {
        let scene = CityConfig::small().seed(1).generate();
        let mut kinds = std::collections::HashSet::new();
        for o in scene.objects() {
            kinds.insert(o.kind);
        }
        assert!(kinds.contains(&ObjectKind::Building));
        assert!(kinds.len() >= 2, "only {kinds:?}");
    }

    #[test]
    fn objects_do_not_overlap_streets() {
        let cfg = CityConfig::tiny();
        let scene = cfg.generate();
        let pitch = cfg.block_size + cfg.street_width;
        for o in scene.objects() {
            // Each object fits inside its block (no street overlap).
            let bx = (o.mbr.center().x / pitch).floor();
            let block_max_x = bx * pitch + cfg.block_size;
            assert!(
                o.mbr.max.x <= block_max_x + 1e-6,
                "object {} spills into street",
                o.id
            );
        }
    }

    #[test]
    fn viewpoint_region_is_at_eye_height() {
        let scene = CityConfig::tiny().generate();
        let vr = scene.viewpoint_region();
        assert!(vr.min.z >= 1.0 && vr.max.z <= 2.5);
        assert!(vr.extent().x > 0.0);
    }

    #[test]
    fn presets_scale_object_counts() {
        let counts: Vec<usize> = DatasetPreset::all()
            .iter()
            .map(|p| p.config().slot_count())
            .collect();
        for w in counts.windows(2) {
            assert!(w[1] > w[0], "presets must grow: {counts:?}");
        }
        // Largest ≈ 4× smallest, matching 400 MB → 1.6 GB.
        let ratio = counts[3] as f64 / counts[0] as f64;
        assert!((3.2..=4.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn world_mesh_fills_object_mbr() {
        let scene = CityConfig::tiny().generate();
        for id in [0u64, 5, 10] {
            let mesh = scene.world_mesh(id, 0);
            let bb = mesh.aabb();
            let want = scene.object(id).mbr;
            assert!(
                want.inflate(1e-3).contains(&bb),
                "object {id}: {bb:?} vs {want:?}"
            );
            // The mesh should roughly span the box, not collapse.
            assert!(bb.extent().x > 0.2 * want.extent().x);
        }
        // Clamping coarse levels works.
        let coarse = scene.world_mesh(0, 99);
        assert!(!coarse.is_empty());
    }

    #[test]
    fn brute_force_window_oracle() {
        let scene = CityConfig::tiny().generate();
        let all = scene.brute_force_window(&scene.bounds());
        assert_eq!(all.len(), scene.len());
        let none = scene.brute_force_window(&Aabb::new(Vec3::splat(-500.0), Vec3::splat(-400.0)));
        assert!(none.is_empty());
    }
}
