//! The prototype model library.
//!
//! Generating and QEM-simplifying a unique mesh per object would dominate
//! build time without changing any measured behaviour (the index and the
//! visibility sampler work on bounding boxes, polygon counts, and byte
//! sizes). So the generator creates a seeded library of distinct prototypes
//! per kind and instances them. Every object still *stores* its own copy of
//! the model bytes in the [`ModelStore`](crate::ModelStore), exactly like the
//! paper's per-object model files.

use crate::object::ObjectKind;
use hdov_geom::sampling::SplitMix64;
use hdov_geom::Vec3;
use hdov_mesh::{generate, LodChain};

/// A library of prototype LoD chains, grouped by object kind.
#[derive(Debug, Clone)]
pub struct PrototypeLibrary {
    chains: Vec<LodChain>,
    buildings: Vec<usize>,
    towers: Vec<usize>,
    bunnies: Vec<usize>,
}

/// Parameters for library construction.
#[derive(Debug, Clone, Copy)]
pub struct PrototypeConfig {
    /// Distinct building prototypes.
    pub building_variants: usize,
    /// Distinct tower prototypes.
    pub tower_variants: usize,
    /// Distinct bunny prototypes.
    pub bunny_variants: usize,
    /// Facade tessellation of buildings (triangles grow with `detail²`).
    pub building_detail: usize,
    /// Icosphere subdivisions for bunnies.
    pub bunny_subdivisions: u32,
    /// Number of LoD levels per chain.
    pub lod_levels: usize,
    /// Polygon ratio between consecutive LoD levels.
    pub lod_ratio: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        PrototypeConfig {
            building_variants: 8,
            tower_variants: 3,
            bunny_variants: 4,
            building_detail: 8,
            bunny_subdivisions: 3,
            lod_levels: 4,
            lod_ratio: 0.25,
            seed: 0,
        }
    }
}

impl PrototypeLibrary {
    /// Builds the library (the expensive step: generation + simplification).
    pub fn build(cfg: &PrototypeConfig) -> Self {
        let mut rng = SplitMix64::new(cfg.seed ^ 0x70726F746F); // "proto"
        let mut chains = Vec::new();
        let mut buildings = Vec::new();
        let mut towers = Vec::new();
        let mut bunnies = Vec::new();

        for i in 0..cfg.building_variants.max(1) {
            // Unit-footprint building, scaled per-instance later.
            let w = 0.7 + 0.3 * rng.next_f64();
            let d = 0.7 + 0.3 * rng.next_f64();
            let mesh = generate::building(
                Vec3::new(-w / 2.0, -d / 2.0, 0.0),
                Vec3::new(w / 2.0, d / 2.0, 0.0),
                1.0,
                cfg.building_detail,
                cfg.seed.wrapping_add(i as u64 * 131),
            );
            buildings.push(chains.len());
            chains.push(LodChain::build(mesh, cfg.lod_levels, cfg.lod_ratio));
        }
        for i in 0..cfg.tower_variants.max(1) {
            let segments = 24 + (rng.next_u64() % 24) as usize;
            let mesh = generate::tower(Vec3::ZERO, 0.4, 1.0, segments);
            let _ = i;
            towers.push(chains.len());
            chains.push(LodChain::build(mesh, cfg.lod_levels, cfg.lod_ratio));
        }
        for i in 0..cfg.bunny_variants.max(1) {
            let mesh = generate::bunny(
                0.5,
                cfg.bunny_subdivisions,
                cfg.seed.wrapping_add(0xB0B0 + i as u64 * 977),
            );
            bunnies.push(chains.len());
            chains.push(LodChain::build(mesh, cfg.lod_levels, cfg.lod_ratio));
        }

        PrototypeLibrary {
            chains,
            buildings,
            towers,
            bunnies,
        }
    }

    /// Builds a library directly from pre-made chains (one prototype per
    /// chain) — the entry point for user-supplied models. The kind pools are
    /// empty, so [`pick`](Self::pick) must not be used on such a library.
    pub fn from_chains(chains: Vec<LodChain>) -> Self {
        PrototypeLibrary {
            chains,
            buildings: Vec::new(),
            towers: Vec::new(),
            bunnies: Vec::new(),
        }
    }

    /// All chains (index = prototype id).
    pub fn chains(&self) -> &[LodChain] {
        &self.chains
    }

    /// The chain of prototype `idx`.
    pub fn chain(&self, idx: usize) -> &LodChain {
        &self.chains[idx]
    }

    /// Number of prototypes.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True if the library is empty (never, after `build`).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Picks a prototype of `kind` using `draw` (any u64 entropy).
    ///
    /// # Panics
    /// Panics for [`ObjectKind::Custom`] or when the library was built with
    /// [`from_chains`](Self::from_chains) (no kind pools).
    pub fn pick(&self, kind: ObjectKind, draw: u64) -> usize {
        let pool = match kind {
            ObjectKind::Building => &self.buildings,
            ObjectKind::Tower => &self.towers,
            ObjectKind::Bunny => &self.bunnies,
            ObjectKind::Custom => panic!("custom prototypes are addressed directly"),
        };
        pool[(draw % pool.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PrototypeConfig {
        PrototypeConfig {
            building_variants: 2,
            tower_variants: 1,
            bunny_variants: 1,
            building_detail: 3,
            bunny_subdivisions: 2,
            lod_levels: 3,
            lod_ratio: 0.3,
            seed: 11,
        }
    }

    #[test]
    fn builds_all_kinds() {
        let lib = PrototypeLibrary::build(&tiny_cfg());
        assert_eq!(lib.len(), 4);
        assert!(!lib.is_empty());
        for kind in [ObjectKind::Building, ObjectKind::Tower, ObjectKind::Bunny] {
            let idx = lib.pick(kind, 123);
            assert!(idx < lib.len());
            assert!(lib.chain(idx).highest().polygons > 0);
        }
    }

    #[test]
    fn chains_have_multiple_levels() {
        let lib = PrototypeLibrary::build(&tiny_cfg());
        for chain in lib.chains() {
            assert!(chain.len() >= 2, "chain has {} levels", chain.len());
            assert!(chain.highest().polygons > chain.lowest().polygons);
        }
    }

    #[test]
    fn deterministic() {
        let a = PrototypeLibrary::build(&tiny_cfg());
        let b = PrototypeLibrary::build(&tiny_cfg());
        assert_eq!(a.chains().len(), b.chains().len());
        for (ca, cb) in a.chains().iter().zip(b.chains()) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn pick_cycles_through_variants() {
        let lib = PrototypeLibrary::build(&tiny_cfg());
        let a = lib.pick(ObjectKind::Building, 0);
        let b = lib.pick(ObjectKind::Building, 1);
        assert_ne!(a, b);
    }
}
