//! The assembled scene.

use crate::object::{ObjectId, SceneObject};
use crate::prototype::PrototypeLibrary;
use hdov_geom::Aabb;
use hdov_mesh::LodChain;

/// A generated virtual environment: positioned objects plus the prototype
/// library their geometry comes from.
#[derive(Debug, Clone)]
pub struct Scene {
    objects: Vec<SceneObject>,
    prototypes: PrototypeLibrary,
    bounds: Aabb,
}

impl Scene {
    /// Assembles a scene (used by the generator).
    pub fn new(objects: Vec<SceneObject>, prototypes: PrototypeLibrary) -> Self {
        let bounds = objects.iter().fold(Aabb::EMPTY, |acc, o| acc.union(&o.mbr));
        Scene {
            objects,
            prototypes,
            bounds,
        }
    }

    /// Builds a scene from user-supplied world-space meshes: each mesh
    /// becomes one object with its own LoD chain (built with the in-repo
    /// QEM simplifier).
    ///
    /// This is the entry point for indexing real datasets (e.g. meshes
    /// imported with [`hdov_mesh::io::from_obj`]) instead of the synthetic
    /// city. Empty meshes are rejected.
    pub fn from_meshes(
        meshes: Vec<hdov_mesh::TriMesh>,
        lod_levels: usize,
        lod_ratio: f64,
    ) -> Option<Scene> {
        if meshes.iter().any(|m| m.is_empty()) {
            return None;
        }
        let mut objects = Vec::with_capacity(meshes.len());
        let mut chains = Vec::with_capacity(meshes.len());
        for (i, mesh) in meshes.into_iter().enumerate() {
            let mbr = mesh.aabb();
            chains.push(LodChain::build(mesh, lod_levels, lod_ratio));
            objects.push(SceneObject::new(
                i as ObjectId,
                crate::object::ObjectKind::Custom,
                i,
                mbr,
            ));
        }
        Some(Scene::new(
            objects,
            crate::prototype::PrototypeLibrary::from_chains(chains),
        ))
    }

    /// All objects, ordered by id.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the scene has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object by id.
    pub fn object(&self, id: ObjectId) -> &SceneObject {
        &self.objects[id as usize]
    }

    /// The LoD chain backing object `id`.
    pub fn chain_of(&self, id: ObjectId) -> &LodChain {
        self.prototypes.chain(self.objects[id as usize].prototype)
    }

    /// The prototype library.
    pub fn prototypes(&self) -> &PrototypeLibrary {
        &self.prototypes
    }

    /// Bounding box of all objects.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Region of space walkthrough viewpoints occupy: the city footprint at
    /// pedestrian eye height.
    pub fn viewpoint_region(&self) -> Aabb {
        let b = self.bounds;
        Aabb::new(
            hdov_geom::Vec3::new(b.min.x, b.min.y, 1.5),
            hdov_geom::Vec3::new(b.max.x, b.max.y, 2.0),
        )
    }

    /// Total full-detail polygons across all objects.
    pub fn total_polygons(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| self.prototypes.chain(o.prototype).highest().polygons as u64)
            .sum()
    }

    /// Total model bytes across all objects and LoD levels — the paper's
    /// "raw dataset size excluding visibility data".
    pub fn total_model_bytes(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| self.prototypes.chain(o.prototype).total_bytes() as u64)
            .sum()
    }

    /// The mesh of object `id` at LoD `level`, transformed into world space
    /// (prototype bounds mapped onto the object's MBR).
    ///
    /// `level` clamps to the coarsest available level.
    pub fn world_mesh(&self, id: ObjectId, level: usize) -> hdov_mesh::TriMesh {
        let o = &self.objects[id as usize];
        let chain = self.prototypes.chain(o.prototype);
        let level = level.min(chain.len() - 1);
        let mut mesh = chain.level(level).mesh.clone();
        let pb = mesh.aabb();
        let pe = pb.extent();
        let oe = o.mbr.extent();
        let scale = hdov_geom::Vec3::new(
            if pe.x > 1e-12 { oe.x / pe.x } else { 1.0 },
            if pe.y > 1e-12 { oe.y / pe.y } else { 1.0 },
            if pe.z > 1e-12 { oe.z / pe.z } else { 1.0 },
        );
        mesh.translate(-pb.min);
        mesh.scale(scale);
        mesh.translate(o.mbr.min);
        mesh
    }

    /// Objects whose MBR intersects `query` (brute force; test oracle).
    pub fn brute_force_window(&self, query: &Aabb) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|o| o.mbr.intersects(query))
            .map(|o| o.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_geom::Vec3;
    use hdov_mesh::generate;

    #[test]
    fn from_meshes_builds_custom_scene() {
        let meshes = vec![
            generate::box_mesh(Vec3::ZERO, Vec3::splat(5.0)),
            generate::icosphere(3.0, 2),
            generate::tower(Vec3::new(20.0, 0.0, 0.0), 2.0, 15.0, 12),
        ];
        let expect_mbrs: Vec<_> = meshes.iter().map(|m| m.aabb()).collect();
        let scene = Scene::from_meshes(meshes, 3, 0.3).unwrap();
        assert_eq!(scene.len(), 3);
        for (i, o) in scene.objects().iter().enumerate() {
            assert_eq!(o.mbr, expect_mbrs[i]);
            assert_eq!(o.kind, crate::object::ObjectKind::Custom);
            let chain = scene.chain_of(i as u64);
            assert!(chain.len() >= 2, "object {i} got no LoD chain");
            // world_mesh at full detail reproduces the input geometry bounds.
            let wm = scene.world_mesh(i as u64, 0);
            assert!(expect_mbrs[i].inflate(1e-3).contains(&wm.aabb()));
        }
        assert!(scene.total_polygons() > 0);
    }

    #[test]
    fn from_meshes_rejects_empty_mesh() {
        let meshes = vec![generate::icosphere(1.0, 0), hdov_mesh::TriMesh::new()];
        assert!(Scene::from_meshes(meshes, 2, 0.5).is_none());
    }
}
