//! Synthetic city scenes and the paged model store.
//!
//! The paper's dataset is "a synthetic city model containing numerous
//! buildings and bunny models. The raw datasets excluding the visibility data
//! vary in sizes from 400 MB to 1.6 GB" (§5.1). This crate generates
//! deterministic equivalents:
//!
//! * a [`PrototypeLibrary`] of building / tower / bunny meshes with LoD
//!   chains (instancing keeps build times sane without changing any
//!   index-level behaviour — every object still stores its own model bytes),
//! * the [`CityConfig`] generator producing a [`Scene`] of positioned
//!   [`SceneObject`]s, and
//! * a [`ModelStore`] that lays every object's LoD levels out in pages, so
//!   fetching a model costs honest disk I/O.
//!
//! Dataset sizes are scaled down ~40× from the paper (10–40 MB of real model
//! bytes standing in for 400 MB–1.6 GB); all experiments report relative
//! behaviour, which the scaling preserves (see `DESIGN.md` §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod object;
pub mod prototype;
pub mod scene;
pub mod store;

pub use city::{CityConfig, DatasetPreset};
pub use object::{ObjectId, ObjectKind, SceneObject};
pub use prototype::PrototypeLibrary;
pub use scene::Scene;
pub use store::{ModelHandle, ModelStore};
