//! The paged model store: heavy-weight LoD geometry laid out on disk.
//!
//! Each model (an object's LoD chain, or an internal-LoD chain in
//! `hdov-core`) is written level-by-level into contiguous pages, so fetching
//! one level costs one random positioning plus a sequential run — the
//! "heavy-weighted model data" I/O of the paper's Fig. 8(a).

use hdov_geom::Vec3;
use hdov_mesh::{LodChain, TriMesh};
use hdov_storage::codec::{ByteReader, ByteWriter};
use hdov_storage::{Page, PageId, PagedFile, Result, StorageError, PAGE_SIZE};

/// Location and metadata of one stored LoD level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelHandle {
    /// Model key (dense: object id or internal-LoD ordinal).
    pub key: u64,
    /// LoD level (0 = highest detail).
    pub level: usize,
    /// First page of the serialized mesh.
    pub first_page: PageId,
    /// Number of pages.
    pub pages: u32,
    /// Exact serialized byte length.
    pub bytes: u32,
    /// Triangle count.
    pub polygons: u32,
}

/// Directory over models stored in a paged file.
///
/// The directory itself is view-invariant metadata and is kept in memory
/// (the paper does the same: only V-pages and models are fetched at query
/// time).
#[derive(Debug, Clone, Default)]
pub struct ModelStore {
    dir: Vec<Vec<ModelHandle>>,
}

/// Serializes a mesh (vertex count, triangle count, then raw LE arrays).
pub fn encode_mesh(mesh: &TriMesh) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(8 + mesh.byte_size());
    w.put_u32(mesh.vertex_count() as u32);
    w.put_u32(mesh.triangle_count() as u32);
    for v in &mesh.vertices {
        w.put_f32(v[0]);
        w.put_f32(v[1]);
        w.put_f32(v[2]);
    }
    for t in &mesh.indices {
        w.put_u32(t[0]);
        w.put_u32(t[1]);
        w.put_u32(t[2]);
    }
    w.into_bytes()
}

/// Decodes a mesh written by [`encode_mesh`].
pub fn decode_mesh(bytes: &[u8]) -> Result<TriMesh> {
    let mut r = ByteReader::new(bytes);
    let nv = r.get_u32()? as usize;
    let nt = r.get_u32()? as usize;
    // Validate the header against the payload length *before* allocating:
    // a corrupted count must produce a typed error, not an OOM abort.
    let need = nv
        .checked_mul(12)
        .and_then(|v| nt.checked_mul(12).map(|t| v + t))
        .ok_or_else(|| StorageError::Corrupt("mesh header count overflow".into()))?;
    if r.remaining() != need {
        return Err(StorageError::Corrupt(format!(
            "mesh payload is {} bytes but the header implies {need}",
            r.remaining()
        )));
    }
    let mut vertices = Vec::with_capacity(nv);
    for _ in 0..nv {
        vertices.push([r.get_f32()?, r.get_f32()?, r.get_f32()?]);
    }
    let mut indices = Vec::with_capacity(nt);
    for _ in 0..nt {
        indices.push([r.get_u32()?, r.get_u32()?, r.get_u32()?]);
    }
    TriMesh::from_parts(vertices, indices)
        .ok_or_else(|| StorageError::Corrupt("mesh indices out of range".into()))
}

impl ModelStore {
    /// Writes every chain into `file` (keys are assigned densely in iteration
    /// order) and returns the directory.
    pub fn build<'a, F, I>(file: &mut F, chains: I) -> Result<Self>
    where
        F: PagedFile,
        I: IntoIterator<Item = &'a LodChain>,
    {
        let mut dir = Vec::new();
        for (key, chain) in chains.into_iter().enumerate() {
            let mut levels = Vec::with_capacity(chain.len());
            for (lvl, level) in chain.levels().iter().enumerate() {
                let payload = encode_mesh(&level.mesh);
                let pages = payload.len().div_ceil(PAGE_SIZE).max(1) as u32;
                let mut first_page = None;
                for chunk_idx in 0..pages as usize {
                    let start = chunk_idx * PAGE_SIZE;
                    let end = (start + PAGE_SIZE).min(payload.len());
                    let page = Page::from_bytes(&payload[start..end]);
                    let id = file.append_page(&page)?;
                    first_page.get_or_insert(id);
                }
                levels.push(ModelHandle {
                    key: key as u64,
                    level: lvl,
                    first_page: first_page.expect("at least one page"),
                    pages,
                    bytes: payload.len() as u32,
                    polygons: level.polygons as u32,
                });
            }
            dir.push(levels);
        }
        Ok(ModelStore { dir })
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True if no models are stored.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Number of LoD levels for model `key`.
    pub fn levels(&self, key: u64) -> usize {
        self.dir[key as usize].len()
    }

    /// Metadata for `(key, level)` — no I/O.
    pub fn handle(&self, key: u64, level: usize) -> ModelHandle {
        self.dir[key as usize][level]
    }

    /// Metadata for the coarsest level of `key`.
    pub fn lowest_handle(&self, key: u64) -> ModelHandle {
        *self.dir[key as usize].last().expect("chains are non-empty")
    }

    /// Fetches (charges the page reads for) `(key, level)` without decoding.
    pub fn fetch<F: PagedFile>(&self, file: &mut F, key: u64, level: usize) -> Result<ModelHandle> {
        let h = self.handle(key, level);
        let mut buf = Page::zeroed();
        for i in 0..h.pages as u64 {
            file.read_page(PageId(h.first_page.0 + i), &mut buf)?;
        }
        Ok(h)
    }

    /// Fetches and decodes the mesh for `(key, level)`.
    pub fn fetch_mesh<F: PagedFile>(
        &self,
        file: &mut F,
        key: u64,
        level: usize,
    ) -> Result<TriMesh> {
        let h = self.handle(key, level);
        let mut payload = Vec::with_capacity(h.pages as usize * PAGE_SIZE);
        let mut buf = Page::zeroed();
        for i in 0..h.pages as u64 {
            file.read_page(PageId(h.first_page.0 + i), &mut buf)?;
            payload.extend_from_slice(buf.bytes());
        }
        payload.truncate(h.bytes as usize);
        decode_mesh(&payload)
    }

    /// Resolves a blend factor `k ∈ [0, 1]` to a discrete LoD level of model
    /// `key`: the level whose polygon count is nearest the interpolated
    /// budget `k · npoly(highest) + (1 − k) · npoly(lowest)` (the paper's
    /// Eq. 5/6 interpolation, snapped to stored levels).
    pub fn select_level(&self, key: u64, k: f64) -> usize {
        let n = self.levels(key);
        let hi = self.handle(key, 0).polygons as f64;
        let lo = self.handle(key, n - 1).polygons as f64;
        let k = k.clamp(0.0, 1.0);
        let budget = k * hi + (1.0 - k) * lo;
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for lvl in 0..n {
            let err = (self.handle(key, lvl).polygons as f64 - budget).abs();
            if err < best_err {
                best = lvl;
                best_err = err;
            }
        }
        best
    }

    /// Total stored bytes (exact payload, not page-padded).
    pub fn total_bytes(&self) -> u64 {
        self.dir.iter().flatten().map(|h| h.bytes as u64).sum()
    }

    /// Total pages across all models.
    pub fn total_pages(&self) -> u64 {
        self.dir.iter().flatten().map(|h| h.pages as u64).sum()
    }
}

/// Serializes a `Vec3` — helper kept for store-adjacent codecs.
#[allow(dead_code)]
fn put_vec3(w: &mut ByteWriter, v: Vec3) {
    w.put_f64(v.x);
    w.put_f64(v.y);
    w.put_f64(v.z);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_mesh::generate;
    use hdov_storage::{DiskModel, MemPagedFile, SimulatedDisk};

    fn two_chains() -> Vec<LodChain> {
        vec![
            LodChain::build(generate::icosphere(1.0, 2), 3, 0.3),
            LodChain::build(generate::box_mesh(Vec3::ZERO, Vec3::splat(2.0)), 1, 0.5),
        ]
    }

    #[test]
    fn mesh_codec_round_trip() {
        let m = generate::icosphere(1.5, 1);
        let bytes = encode_mesh(&m);
        let d = decode_mesh(&bytes).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn mesh_codec_rejects_corrupt() {
        let m = generate::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
        let mut bytes = encode_mesh(&m);
        bytes.truncate(10);
        assert!(decode_mesh(&bytes).is_err());
        // Out-of-range index.
        let mut bad = encode_mesh(&m);
        let idx_start = 8 + 8 * 12;
        bad[idx_start] = 0xFF;
        bad[idx_start + 1] = 0xFF;
        assert!(decode_mesh(&bad).is_err());
    }

    #[test]
    fn store_build_and_fetch() {
        let chains = two_chains();
        let mut file = MemPagedFile::new();
        let store = ModelStore::build(&mut file, chains.iter()).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.levels(0), chains[0].len());
        assert_eq!(store.levels(1), 1);

        let h = store.fetch(&mut file, 0, 0).unwrap();
        assert_eq!(h.polygons, chains[0].highest().polygons as u32);
        let mesh = store.fetch_mesh(&mut file, 0, 0).unwrap();
        assert_eq!(mesh, chains[0].highest().mesh);
        let lowest = store.fetch_mesh(&mut file, 0, store.levels(0) - 1).unwrap();
        assert_eq!(lowest, chains[0].lowest().mesh);
    }

    #[test]
    fn fetch_charges_sequential_io() {
        let chains = [LodChain::build(generate::icosphere(1.0, 3), 1, 0.5)];
        let mut file = SimulatedDisk::new(MemPagedFile::new(), DiskModel::PAPER_ERA);
        let store = ModelStore::build(&mut file, chains.iter()).unwrap();
        let h = store.handle(0, 0);
        assert!(h.pages > 1, "want a multi-page model for this test");
        file.reset_stats();
        store.fetch(&mut file, 0, 0).unwrap();
        let s = file.stats();
        assert_eq!(s.page_reads, h.pages as u64);
        // One random positioning + sequential remainder.
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.sequential_reads, h.pages as u64 - 1);
    }

    #[test]
    fn totals_match_directory() {
        let chains = two_chains();
        let mut file = MemPagedFile::new();
        let store = ModelStore::build(&mut file, chains.iter()).unwrap();
        let expect: u64 = chains
            .iter()
            .flat_map(|c| c.levels())
            .map(|l| (l.bytes + 8) as u64)
            .sum();
        assert_eq!(store.total_bytes(), expect);
        assert_eq!(store.total_pages(), file.page_count());
    }

    #[test]
    fn lowest_handle_is_last_level() {
        let chains = two_chains();
        let mut file = MemPagedFile::new();
        let store = ModelStore::build(&mut file, chains.iter()).unwrap();
        let h = store.lowest_handle(0);
        assert_eq!(h.level, store.levels(0) - 1);
        assert_eq!(h.polygons, chains[0].lowest().polygons as u32);
    }
}
