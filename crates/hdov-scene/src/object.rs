//! Scene objects: positioned instances of prototype models.

use hdov_geom::Aabb;

/// Identifier of an object within a scene (dense, `0..scene.len()`).
pub type ObjectId = u64;

/// What kind of model an object instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A multi-tier building with tessellated facades.
    Building,
    /// A tall prismatic tower.
    Tower,
    /// A displaced-icosphere "bunny".
    Bunny,
    /// A user-supplied model (see
    /// [`Scene::from_meshes`](crate::Scene::from_meshes)).
    Custom,
}

/// One object of the virtual environment.
///
/// The heavy geometry lives in the [`PrototypeLibrary`](crate::PrototypeLibrary)
/// (indexed by `prototype`); the object carries its world placement and the
/// world-space bounding box used by the spatial index and the visibility
/// sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// Dense object id.
    pub id: ObjectId,
    /// Model kind.
    pub kind: ObjectKind,
    /// Index into the scene's prototype library.
    pub prototype: usize,
    /// World-space bounding box.
    pub mbr: Aabb,
}

impl SceneObject {
    /// Creates an object record.
    pub fn new(id: ObjectId, kind: ObjectKind, prototype: usize, mbr: Aabb) -> Self {
        SceneObject {
            id,
            kind,
            prototype,
            mbr,
        }
    }
}
