//! Property-based tests of the scene generator and the model store.

use hdov_mesh::generate;
use hdov_scene::store::{decode_mesh, encode_mesh};
use hdov_scene::{CityConfig, ModelStore};
use hdov_storage::{MemPagedFile, PagedFile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mesh_codec_identity(seed in 0u64..500, subdiv in 0u32..3) {
        let m = generate::bunny(2.0, subdiv, seed);
        let bytes = encode_mesh(&m);
        let d = decode_mesh(&bytes).unwrap();
        prop_assert_eq!(d, m);
    }

    #[test]
    fn corrupting_any_header_byte_is_detected_or_consistent(
        seed in 0u64..100,
        flip in 0usize..8,
    ) {
        // Corrupt a count byte: decode must error or produce a mesh whose
        // counts match the (corrupted) header — never panic.
        let m = generate::icosphere(1.0, 1);
        let mut bytes = encode_mesh(&m);
        bytes[flip] = bytes[flip].wrapping_add(seed as u8 | 1);
        let _ = decode_mesh(&bytes); // must not panic
    }

    #[test]
    fn city_objects_disjoint_from_streets(seed in 0u64..50) {
        let cfg = CityConfig::tiny().seed(seed);
        let scene = cfg.generate();
        prop_assert_eq!(scene.len(), cfg.slot_count());
        let pitch = cfg.block_size + cfg.street_width;
        for o in scene.objects() {
            // Inside exactly one block.
            let bx = (o.mbr.center().x / pitch).floor();
            let by = (o.mbr.center().y / pitch).floor();
            prop_assert!(o.mbr.min.x >= bx * pitch - 1e-6);
            prop_assert!(o.mbr.max.x <= bx * pitch + cfg.block_size + 1e-6);
            prop_assert!(o.mbr.min.y >= by * pitch - 1e-6);
            prop_assert!(o.mbr.max.y <= by * pitch + cfg.block_size + 1e-6);
            prop_assert!(o.mbr.volume() > 0.0);
        }
    }

    #[test]
    fn model_store_round_trips_every_level(seed in 0u64..30) {
        let scene = CityConfig::tiny().seed(seed).generate();
        let mut file = MemPagedFile::new();
        let chains: Vec<_> = scene
            .objects()
            .iter()
            .map(|o| scene.prototypes().chain(o.prototype))
            .collect();
        let store = ModelStore::build(&mut file, chains.iter().copied()).unwrap();
        prop_assert_eq!(store.len(), scene.len());
        // Spot-check three objects end to end.
        for id in [0u64, (scene.len() / 2) as u64, scene.len() as u64 - 1] {
            for level in 0..store.levels(id) {
                let mesh = store.fetch_mesh(&mut file, id, level).unwrap();
                prop_assert_eq!(&mesh, &chains[id as usize].level(level).mesh);
                let h = store.handle(id, level);
                prop_assert_eq!(h.polygons as usize, mesh.triangle_count());
            }
        }
        prop_assert_eq!(store.total_pages(), file.page_count());
    }

    #[test]
    fn select_level_monotone_for_all_objects(seed in 0u64..20) {
        let scene = CityConfig::tiny().seed(seed).generate();
        let mut file = MemPagedFile::new();
        let store = ModelStore::build(
            &mut file,
            scene.objects().iter().map(|o| scene.prototypes().chain(o.prototype)),
        )
        .unwrap();
        for id in 0..store.len() as u64 {
            let mut prev = usize::MAX;
            for i in 0..=10 {
                let lvl = store.select_level(id, i as f64 / 10.0);
                prop_assert!(lvl <= prev, "object {id}: level jumped up");
                prev = lvl;
            }
            prop_assert_eq!(store.select_level(id, 1.0), 0);
            prop_assert_eq!(store.select_level(id, 0.0), store.levels(id) - 1);
        }
    }
}
