//! Deterministic procedural model generators.
//!
//! These replace the paper's city/bunny model files: buildings are extruded
//! boxes with window-grid tessellation (so high-detail LoDs genuinely carry
//! thousands of polygons), towers are prismatic cylinders, and "bunnies" are
//! noise-displaced icospheres.

use crate::TriMesh;
use hdov_geom::sampling::SplitMix64;
use hdov_geom::Vec3;

/// Axis-aligned box mesh between `min` and `max` (12 triangles).
pub fn box_mesh(min: Vec3, max: Vec3) -> TriMesh {
    let v = |x: f64, y: f64, z: f64| [x as f32, y as f32, z as f32];
    let vertices = vec![
        v(min.x, min.y, min.z),
        v(max.x, min.y, min.z),
        v(max.x, max.y, min.z),
        v(min.x, max.y, min.z),
        v(min.x, min.y, max.z),
        v(max.x, min.y, max.z),
        v(max.x, max.y, max.z),
        v(min.x, max.y, max.z),
    ];
    let indices = vec![
        [0, 2, 1],
        [0, 3, 2], // bottom (z = min)
        [4, 5, 6],
        [4, 6, 7], // top
        [0, 1, 5],
        [0, 5, 4], // y = min
        [2, 3, 7],
        [2, 7, 6], // y = max
        [1, 2, 6],
        [1, 6, 5], // x = max
        [3, 0, 4],
        [3, 4, 7], // x = min
    ];
    TriMesh { vertices, indices }
}

/// A box tessellated into a `nx × ny × nz` grid per face.
///
/// Used for high-detail building LoDs: a `20 × 20` facade grid makes a
/// building cost thousands of polygons at full detail, like the paper's
/// models.
pub fn tessellated_box(min: Vec3, max: Vec3, div: usize) -> TriMesh {
    assert!(div >= 1);
    let mut mesh = TriMesh::new();
    let e = max - min;
    // For each face: origin, u-axis, v-axis.
    let faces = [
        (min, Vec3::new(e.x, 0.0, 0.0), Vec3::new(0.0, e.y, 0.0)), // bottom
        (
            Vec3::new(min.x, min.y, max.z),
            Vec3::new(0.0, e.y, 0.0),
            Vec3::new(e.x, 0.0, 0.0),
        ), // top
        (min, Vec3::new(0.0, 0.0, e.z), Vec3::new(e.x, 0.0, 0.0)), // y=min
        (
            Vec3::new(min.x, max.y, min.z),
            Vec3::new(e.x, 0.0, 0.0),
            Vec3::new(0.0, 0.0, e.z),
        ), // y=max
        (min, Vec3::new(0.0, e.y, 0.0), Vec3::new(0.0, 0.0, e.z)), // x=min
        (
            Vec3::new(max.x, min.y, min.z),
            Vec3::new(0.0, 0.0, e.z),
            Vec3::new(0.0, e.y, 0.0),
        ), // x=max
    ];
    for (origin, u, v) in faces {
        let base = mesh.vertices.len() as u32;
        for i in 0..=div {
            for j in 0..=div {
                let p = origin + u * (i as f64 / div as f64) + v * (j as f64 / div as f64);
                mesh.vertices.push([p.x as f32, p.y as f32, p.z as f32]);
            }
        }
        let stride = (div + 1) as u32;
        for i in 0..div as u32 {
            for j in 0..div as u32 {
                let a = base + i * stride + j;
                let b = a + stride;
                mesh.indices.push([a, b, a + 1]);
                mesh.indices.push([a + 1, b, b + 1]);
            }
        }
    }
    // Weld the seams between faces so the box is watertight.
    mesh.weld(1e-6 * (e.length() + 1.0));
    mesh
}

/// A vertical prismatic tower (cylinder approximation) with `segments` sides,
/// centred at `center_xy` on the ground plane `z = base_z`.
pub fn tower(center: Vec3, radius: f64, height: f64, segments: usize) -> TriMesh {
    assert!(segments >= 3);
    let mut vertices = Vec::with_capacity(segments * 2 + 2);
    for ring in 0..2 {
        let z = center.z + ring as f64 * height;
        for s in 0..segments {
            let a = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
            vertices.push([
                (center.x + radius * a.cos()) as f32,
                (center.y + radius * a.sin()) as f32,
                z as f32,
            ]);
        }
    }
    let bottom_center = vertices.len() as u32;
    vertices.push([center.x as f32, center.y as f32, center.z as f32]);
    let top_center = vertices.len() as u32;
    vertices.push([center.x as f32, center.y as f32, (center.z + height) as f32]);

    let mut indices = Vec::with_capacity(segments * 4);
    let n = segments as u32;
    for s in 0..n {
        let s1 = (s + 1) % n;
        // Side quad.
        indices.push([s, s1, n + s]);
        indices.push([s1, n + s1, n + s]);
        // Caps.
        indices.push([bottom_center, s1, s]);
        indices.push([top_center, n + s, n + s1]);
    }
    TriMesh { vertices, indices }
}

/// An icosphere with `subdivisions` levels (0 = icosahedron, 20 faces; each
/// level multiplies the face count by 4).
pub fn icosphere(radius: f64, subdivisions: u32) -> TriMesh {
    // Icosahedron.
    let t = (1.0 + 5.0_f64.sqrt()) / 2.0;
    let raw = [
        (-1.0, t, 0.0),
        (1.0, t, 0.0),
        (-1.0, -t, 0.0),
        (1.0, -t, 0.0),
        (0.0, -1.0, t),
        (0.0, 1.0, t),
        (0.0, -1.0, -t),
        (0.0, 1.0, -t),
        (t, 0.0, -1.0),
        (t, 0.0, 1.0),
        (-t, 0.0, -1.0),
        (-t, 0.0, 1.0),
    ];
    let mut vertices: Vec<Vec3> = raw
        .iter()
        .map(|&(x, y, z)| Vec3::new(x, y, z).normalize_or_zero())
        .collect();
    let mut faces: Vec<[u32; 3]> = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    use std::collections::HashMap;
    for _ in 0..subdivisions {
        let mut midpoint: HashMap<(u32, u32), u32> = HashMap::new();
        let mut next = Vec::with_capacity(faces.len() * 4);
        for [a, b, c] in faces {
            let mut mid = |i: u32, j: u32, vertices: &mut Vec<Vec3>| -> u32 {
                let key = (i.min(j), i.max(j));
                *midpoint.entry(key).or_insert_with(|| {
                    let m =
                        ((vertices[i as usize] + vertices[j as usize]) * 0.5).normalize_or_zero();
                    vertices.push(m);
                    vertices.len() as u32 - 1
                })
            };
            let ab = mid(a, b, &mut vertices);
            let bc = mid(b, c, &mut vertices);
            let ca = mid(c, a, &mut vertices);
            next.push([a, ab, ca]);
            next.push([b, bc, ab]);
            next.push([c, ca, bc]);
            next.push([ab, bc, ca]);
        }
        faces = next;
    }
    TriMesh {
        vertices: vertices
            .into_iter()
            .map(|v| {
                let p = v * radius;
                [p.x as f32, p.y as f32, p.z as f32]
            })
            .collect(),
        indices: faces,
    }
}

/// A "bunny": an icosphere displaced by deterministic multi-frequency noise,
/// standing in for the Stanford bunny models of the paper's dataset.
pub fn bunny(radius: f64, subdivisions: u32, seed: u64) -> TriMesh {
    let mut mesh = icosphere(radius, subdivisions);
    let hash_noise = |p: Vec3, freq: f64| -> f64 {
        // Value noise from hashed lattice cells (deterministic).
        let q = p * freq;
        let cell = (q.x.floor() as i64, q.y.floor() as i64, q.z.floor() as i64);
        let mut h = SplitMix64::new(
            seed ^ (cell.0 as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (cell.1 as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
                ^ (cell.2 as u64).wrapping_mul(0x165667B19E3779F9),
        );
        h.next_f64() - 0.5
    };
    for v in &mut mesh.vertices {
        let p = Vec3::from(*v);
        let dir = p.normalize_or_zero();
        let d = 0.25 * hash_noise(p, 2.0 / radius) + 0.1 * hash_noise(p, 6.0 / radius);
        let q = p + dir * (d * radius);
        *v = [q.x as f32, q.y as f32, q.z as f32];
    }
    mesh
}

/// A building: tessellated main block plus a seeded number of setback tiers.
///
/// `detail` controls the facade tessellation (triangle count grows with
/// `detail²`); footprint is `[min, max]` on the ground, total height `height`.
pub fn building(min: Vec3, max: Vec3, height: f64, detail: usize, seed: u64) -> TriMesh {
    let mut rng = SplitMix64::new(seed);
    let tiers = 1 + (rng.next_u64() % 3) as usize;
    let mut mesh = TriMesh::new();
    let mut lo = min;
    let mut hi = Vec3::new(max.x, max.y, min.z);
    let mut remaining = height;
    for tier in 0..tiers {
        let tier_h = if tier + 1 == tiers {
            remaining
        } else {
            let f = 0.4 + 0.3 * rng.next_f64();
            remaining * f
        };
        hi = Vec3::new(hi.x, hi.y, lo.z + tier_h);
        mesh.append(&tessellated_box(lo, hi, detail.max(1)));
        remaining -= tier_h;
        // Setback for the next tier.
        let inset_x = (hi.x - lo.x) * (0.1 + 0.15 * rng.next_f64());
        let inset_y = (hi.y - lo.y) * (0.1 + 0.15 * rng.next_f64());
        lo = Vec3::new(lo.x + inset_x, lo.y + inset_y, hi.z);
        hi = Vec3::new(hi.x - inset_x, hi.y - inset_y, hi.z);
        if remaining <= 0.0 || hi.x <= lo.x || hi.y <= lo.y {
            break;
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_geom::Aabb;

    #[test]
    fn box_mesh_is_closed_cuboid() {
        let m = box_mesh(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.triangle_count(), 12);
        assert_eq!(m.vertex_count(), 8);
        assert!((m.surface_area() - 22.0).abs() < 1e-4);
        assert_eq!(m.aabb(), Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)));
    }

    #[test]
    fn tessellated_box_matches_plain_box() {
        let m = tessellated_box(Vec3::ZERO, Vec3::splat(2.0), 4);
        assert_eq!(m.triangle_count(), 6 * 4 * 4 * 2);
        assert!((m.surface_area() - 24.0).abs() < 1e-3);
        assert_eq!(m.aabb(), Aabb::new(Vec3::ZERO, Vec3::splat(2.0)));
    }

    #[test]
    fn tower_shape() {
        let m = tower(Vec3::ZERO, 1.0, 5.0, 16);
        assert_eq!(m.triangle_count(), 16 * 4);
        let bb = m.aabb();
        assert!((bb.max.z - 5.0).abs() < 1e-6);
        assert!((bb.max.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn icosphere_face_counts() {
        assert_eq!(icosphere(1.0, 0).triangle_count(), 20);
        assert_eq!(icosphere(1.0, 1).triangle_count(), 80);
        assert_eq!(icosphere(1.0, 2).triangle_count(), 320);
    }

    #[test]
    fn icosphere_vertices_on_sphere() {
        let m = icosphere(2.5, 2);
        for v in &m.vertices {
            let r = Vec3::from(*v).length();
            assert!((r - 2.5).abs() < 1e-5, "r = {r}");
        }
    }

    #[test]
    fn bunny_is_seeded_and_bounded() {
        let a = bunny(1.0, 2, 7);
        let b = bunny(1.0, 2, 7);
        let c = bunny(1.0, 2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Displacement is at most 0.35 * radius.
        for v in &a.vertices {
            assert!(Vec3::from(*v).length() < 1.4);
        }
    }

    #[test]
    fn building_deterministic_and_positive() {
        let a = building(Vec3::ZERO, Vec3::new(10.0, 8.0, 0.0), 30.0, 6, 99);
        let b = building(Vec3::ZERO, Vec3::new(10.0, 8.0, 0.0), 30.0, 6, 99);
        assert_eq!(a, b);
        assert!(a.triangle_count() >= 6 * 6 * 6 * 2);
        let bb = a.aabb();
        assert!((bb.max.z - 30.0).abs() < 1e-4);
        assert!(bb.min.z.abs() < 1e-6);
    }

    #[test]
    fn building_detail_scales_polygons() {
        let coarse = building(Vec3::ZERO, Vec3::splat(10.0), 20.0, 1, 5);
        let fine = building(Vec3::ZERO, Vec3::splat(10.0), 20.0, 10, 5);
        assert!(fine.triangle_count() > 20 * coarse.triangle_count());
    }
}
