//! Level-of-detail chains and the paper's interpolated LoD selection.
//!
//! Each object (and each internal HDoV-tree node) carries an ordered chain of
//! representations from `LoD_highest` (full detail) to `LoD_lowest`. The
//! traversal algorithm picks a *blend factor* `k ∈ (0, 1]`:
//!
//! * leaf objects: `k = min(DoV / MAXDOV, 1)` with `MAXDOV = 0.5` (Eq. 6),
//! * internal nodes: `k = DoV / η` (Eq. 5),
//!
//! and the chain resolves `k` to the discrete level whose polygon count is
//! closest to the interpolated budget
//! `k · npoly(highest) + (1 − k) · npoly(lowest)`.

use crate::{simplify, TriMesh};

/// One level of a LoD chain.
#[derive(Debug, Clone, PartialEq)]
pub struct LodLevel {
    /// The geometry at this level.
    pub mesh: TriMesh,
    /// Cached triangle count.
    pub polygons: usize,
    /// Cached serialized byte size.
    pub bytes: usize,
}

impl LodLevel {
    /// Wraps a mesh as a level.
    pub fn new(mesh: TriMesh) -> Self {
        let polygons = mesh.triangle_count();
        let bytes = mesh.byte_size();
        LodLevel {
            mesh,
            polygons,
            bytes,
        }
    }
}

/// An ordered multi-resolution chain: level 0 is the *highest* detail, the
/// last level is the *lowest*.
///
/// ```
/// use hdov_mesh::{generate, LodChain};
/// let chain = LodChain::build(generate::icosphere(1.0, 2), 3, 0.25);
/// assert!(chain.highest().polygons > chain.lowest().polygons);
/// assert_eq!(chain.select(1.0), 0);               // full detail
/// assert_eq!(chain.select(0.0), chain.len() - 1); // coarsest
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LodChain {
    levels: Vec<LodLevel>,
}

impl LodChain {
    /// Builds a chain from pre-made levels (must be non-empty and sorted by
    /// non-increasing polygon count).
    ///
    /// Returns `None` if empty or mis-ordered.
    pub fn from_levels(levels: Vec<LodLevel>) -> Option<Self> {
        if levels.is_empty() {
            return None;
        }
        if levels.windows(2).any(|w| w[0].polygons < w[1].polygons) {
            return None;
        }
        Some(LodChain { levels })
    }

    /// Builds a chain by repeatedly simplifying `mesh`.
    ///
    /// Produces `num_levels` levels where each level has roughly `ratio`
    /// times the polygons of the previous one (`0 < ratio < 1`). Level 0 is
    /// the input mesh itself.
    pub fn build(mesh: TriMesh, num_levels: usize, ratio: f64) -> Self {
        assert!(num_levels >= 1, "need at least one level");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
        let mut levels = Vec::with_capacity(num_levels);
        let base_count = mesh.triangle_count();
        levels.push(LodLevel::new(mesh));
        for i in 1..num_levels {
            let target = ((base_count as f64) * ratio.powi(i as i32)).round() as usize;
            let prev = &levels[i - 1].mesh;
            let simplified = simplify(prev, target.max(4));
            // Simplification is monotone but guard against plateaus.
            if simplified.triangle_count() >= levels[i - 1].polygons {
                break;
            }
            levels.push(LodLevel::new(simplified));
        }
        LodChain { levels }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the chain has exactly one level.
    pub fn is_single(&self) -> bool {
        self.levels.len() == 1
    }

    /// Never true: chains always hold at least one level.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All levels, highest detail first.
    pub fn levels(&self) -> &[LodLevel] {
        &self.levels
    }

    /// The full-detail level.
    pub fn highest(&self) -> &LodLevel {
        &self.levels[0]
    }

    /// The coarsest level.
    pub fn lowest(&self) -> &LodLevel {
        self.levels.last().expect("chain is never empty")
    }

    /// Level by index (0 = highest).
    pub fn level(&self, i: usize) -> &LodLevel {
        &self.levels[i]
    }

    /// Interpolated polygon budget for blend factor `k ∈ [0, 1]` — the
    /// paper's `k · LoD_highest + (1 − k) · LoD_lowest` measured in polygons.
    pub fn interpolated_polygons(&self, k: f64) -> f64 {
        let k = k.clamp(0.0, 1.0);
        k * self.highest().polygons as f64 + (1.0 - k) * self.lowest().polygons as f64
    }

    /// Resolves blend factor `k` to the discrete level whose polygon count is
    /// closest to [`interpolated_polygons`](Self::interpolated_polygons).
    ///
    /// Returns the level index (0 = highest detail).
    pub fn select(&self, k: f64) -> usize {
        let budget = self.interpolated_polygons(k);
        let mut best = 0usize;
        let mut best_err = f64::INFINITY;
        for (i, lvl) in self.levels.iter().enumerate() {
            let err = (lvl.polygons as f64 - budget).abs();
            if err < best_err {
                best = i;
                best_err = err;
            }
        }
        best
    }

    /// Total bytes across all levels (what the model store writes).
    pub fn total_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use hdov_geom::Vec3;

    fn sphere_chain() -> LodChain {
        LodChain::build(generate::icosphere(1.0, 3), 4, 0.25)
    }

    #[test]
    fn build_produces_decreasing_levels() {
        let c = sphere_chain();
        assert!(c.len() >= 3, "expected several levels, got {}", c.len());
        for w in c.levels().windows(2) {
            assert!(w[0].polygons > w[1].polygons);
        }
        assert_eq!(c.highest().polygons, 1280);
    }

    #[test]
    fn select_extremes() {
        let c = sphere_chain();
        assert_eq!(c.select(1.0), 0);
        assert_eq!(c.select(0.0), c.len() - 1);
    }

    #[test]
    fn select_is_monotone_in_k() {
        let c = sphere_chain();
        let mut prev = usize::MAX;
        for i in 0..=10 {
            let k = i as f64 / 10.0;
            let lvl = c.select(k);
            assert!(
                lvl <= prev,
                "selection must move to finer levels as k grows"
            );
            prev = lvl;
        }
    }

    #[test]
    fn interpolated_polygon_budget() {
        let c = sphere_chain();
        let hi = c.highest().polygons as f64;
        let lo = c.lowest().polygons as f64;
        assert_eq!(c.interpolated_polygons(1.0), hi);
        assert_eq!(c.interpolated_polygons(0.0), lo);
        assert!((c.interpolated_polygons(0.5) - (hi + lo) / 2.0).abs() < 1e-9);
        // Out-of-range k clamps.
        assert_eq!(c.interpolated_polygons(7.0), hi);
    }

    #[test]
    fn from_levels_validation() {
        let big = LodLevel::new(generate::icosphere(1.0, 2));
        let small = LodLevel::new(generate::icosphere(1.0, 0));
        assert!(LodChain::from_levels(vec![]).is_none());
        assert!(LodChain::from_levels(vec![small.clone(), big.clone()]).is_none());
        let c = LodChain::from_levels(vec![big, small]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn single_level_chain() {
        let c = LodChain::build(generate::box_mesh(Vec3::ZERO, Vec3::splat(1.0)), 1, 0.5);
        assert!(c.is_single());
        assert_eq!(c.select(0.3), 0);
        assert_eq!(c.highest().polygons, c.lowest().polygons);
    }

    #[test]
    fn total_bytes_sums_levels() {
        let c = sphere_chain();
        let sum: usize = c.levels().iter().map(|l| l.bytes).sum();
        assert_eq!(c.total_bytes(), sum);
        assert!(sum > 0);
    }
}
