//! Indexed triangle meshes.

use hdov_geom::{Aabb, Triangle, Vec3};

/// An indexed triangle mesh with `f32` vertices.
///
/// Vertices are stored single-precision (as a real model file would be);
/// geometry queries convert to `f64` at the boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<[f32; 3]>,
    /// Triangles as vertex-index triples.
    pub indices: Vec<[u32; 3]>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a mesh from parts, validating the indices.
    ///
    /// Returns `None` when any index is out of range.
    pub fn from_parts(vertices: Vec<[f32; 3]>, indices: Vec<[u32; 3]>) -> Option<Self> {
        let n = vertices.len() as u32;
        if indices.iter().flatten().any(|&i| i >= n) {
            return None;
        }
        Some(TriMesh { vertices, indices })
    }

    /// Number of triangles (the paper's "polygons").
    #[inline]
    pub fn triangle_count(&self) -> usize {
        self.indices.len()
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// True if the mesh has no triangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Serialized size in bytes: 12 bytes per vertex + 12 per triangle.
    /// This is what the model store charges when a LoD is fetched from disk.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.vertices.len() * 12 + self.indices.len() * 12
    }

    /// Vertex position `i` as a `Vec3`.
    #[inline]
    pub fn vertex(&self, i: u32) -> Vec3 {
        self.vertices[i as usize].into()
    }

    /// Triangle `t` as a geometric [`Triangle`].
    #[inline]
    pub fn triangle(&self, t: usize) -> Triangle {
        let [a, b, c] = self.indices[t];
        Triangle::new(self.vertex(a), self.vertex(b), self.vertex(c))
    }

    /// Iterator over all triangles.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle> + '_ {
        (0..self.indices.len()).map(|t| self.triangle(t))
    }

    /// Bounding box of all vertices (not only referenced ones).
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().map(|&v| v.into()))
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Translates every vertex by `d`.
    pub fn translate(&mut self, d: Vec3) {
        for v in &mut self.vertices {
            v[0] += d.x as f32;
            v[1] += d.y as f32;
            v[2] += d.z as f32;
        }
    }

    /// Scales every vertex about the origin.
    pub fn scale(&mut self, s: Vec3) {
        for v in &mut self.vertices {
            v[0] *= s.x as f32;
            v[1] *= s.y as f32;
            v[2] *= s.z as f32;
        }
    }

    /// Appends another mesh (concatenating vertex and index buffers).
    pub fn append(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.indices.extend(
            other
                .indices
                .iter()
                .map(|&[a, b, c]| [a + base, b + base, c + base]),
        );
    }

    /// Welds vertices that coincide within `tolerance`, remapping indices and
    /// dropping triangles that become degenerate. Returns the number of
    /// vertices removed.
    ///
    /// Generators that emit per-face vertex grids (e.g.
    /// [`generate::tessellated_box`](crate::generate::tessellated_box)) call
    /// this so the result is watertight — open seams would otherwise let the
    /// simplifier shrink each face patch independently.
    pub fn weld(&mut self, tolerance: f64) -> usize {
        use std::collections::HashMap;
        let inv = 1.0 / tolerance.max(1e-12);
        let quantize = |v: &[f32; 3]| {
            (
                (v[0] as f64 * inv).round() as i64,
                (v[1] as f64 * inv).round() as i64,
                (v[2] as f64 * inv).round() as i64,
            )
        };
        let before = self.vertices.len();
        let mut canonical: HashMap<(i64, i64, i64), u32> = HashMap::new();
        let mut remap = vec![0u32; before];
        let mut new_vertices = Vec::with_capacity(before);
        for (i, v) in self.vertices.iter().enumerate() {
            let key = quantize(v);
            let idx = *canonical.entry(key).or_insert_with(|| {
                new_vertices.push(*v);
                new_vertices.len() as u32 - 1
            });
            remap[i] = idx;
        }
        for tri in &mut self.indices {
            for i in tri {
                *i = remap[*i as usize];
            }
        }
        self.vertices = new_vertices;
        self.indices.retain(|&[a, b, c]| a != b && b != c && a != c);
        before - self.vertices.len()
    }

    /// Drops degenerate triangles (repeated vertex indices) and unreferenced
    /// vertices, remapping indices. Returns the number of triangles removed.
    pub fn compact(&mut self) -> usize {
        let before = self.indices.len();
        self.indices.retain(|&[a, b, c]| a != b && b != c && a != c);
        // Remove unreferenced vertices.
        let mut used = vec![false; self.vertices.len()];
        for tri in &self.indices {
            for &i in tri {
                used[i as usize] = true;
            }
        }
        let mut remap = vec![u32::MAX; self.vertices.len()];
        let mut new_vertices = Vec::with_capacity(self.vertices.len());
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = new_vertices.len() as u32;
                new_vertices.push(self.vertices[i]);
            }
        }
        for tri in &mut self.indices {
            for i in tri {
                *i = remap[*i as usize];
            }
        }
        self.vertices = new_vertices;
        before - self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> TriMesh {
        TriMesh::from_parts(
            vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0],
                [0.0, 1.0, 0.0],
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_sizes() {
        let m = quad();
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertex_count(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.byte_size(), 4 * 12 + 2 * 12);
    }

    #[test]
    fn invalid_indices_rejected() {
        assert!(TriMesh::from_parts(vec![[0.0; 3]], vec![[0, 0, 1]]).is_none());
    }

    #[test]
    fn aabb_and_area() {
        let m = quad();
        let bb = m.aabb();
        assert_eq!(bb.min, Vec3::ZERO);
        assert_eq!(bb.max, Vec3::new(1.0, 1.0, 0.0));
        assert!((m.surface_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transforms() {
        let mut m = quad();
        m.translate(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.aabb().min, Vec3::new(1.0, 2.0, 3.0));
        m.scale(Vec3::splat(2.0));
        assert_eq!(m.aabb().max, Vec3::new(4.0, 6.0, 6.0));
    }

    #[test]
    fn append_offsets_indices() {
        let mut a = quad();
        let b = quad();
        a.append(&b);
        assert_eq!(a.triangle_count(), 4);
        assert_eq!(a.vertex_count(), 8);
        assert_eq!(a.indices[2], [4, 5, 6]);
    }

    #[test]
    fn compact_removes_degenerates_and_orphans() {
        let mut m = TriMesh::from_parts(
            vec![[0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [9.0, 9.0, 9.0]],
            vec![[0, 1, 2], [1, 1, 2]],
        )
        .unwrap();
        let removed = m.compact();
        assert_eq!(removed, 1);
        assert_eq!(m.triangle_count(), 1);
        assert_eq!(m.vertex_count(), 3); // orphan [9,9,9] dropped
        assert_eq!(m.indices[0], [0, 1, 2]);
    }

    #[test]
    fn triangles_iterator() {
        let m = quad();
        let tris: Vec<_> = m.triangles().collect();
        assert_eq!(tris.len(), 2);
        assert!((tris[0].area() - 0.5).abs() < 1e-9);
    }
}
