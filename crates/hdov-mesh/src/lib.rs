//! Triangle meshes, procedural model generators, mesh simplification, and
//! level-of-detail (LoD) chains.
//!
//! The paper's dataset is "a synthetic city model containing numerous
//! buildings and bunny models", each object carrying multi-resolution
//! representations produced with *qslim* (quadric error metrics). This crate
//! rebuilds that tool chain:
//!
//! * [`TriMesh`] — indexed triangle meshes,
//! * [`generate`] — deterministic building / tower / blob ("bunny")
//!   generators,
//! * [`mod@simplify`] — a quadric-error-metric edge-collapse simplifier
//!   (the qslim substitute), and
//! * [`LodChain`] — ordered multi-resolution representations with the
//!   interpolated LoD selection of the paper's Eqs. 5 and 6, and
//! * [`io`] — Wavefront OBJ import/export for exchanging geometry with
//!   standard tools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod io;
pub mod lod;
pub mod mesh;
pub mod simplify;

pub use io::{from_obj, to_obj, ObjError};
pub use lod::{LodChain, LodLevel};
pub use mesh::TriMesh;
pub use simplify::simplify;
