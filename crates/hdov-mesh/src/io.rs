//! Wavefront OBJ import/export.
//!
//! The paper's walkthrough system renders model files; this module lets the
//! reproduction exchange geometry with standard tools — export any scene or
//! query result for inspection in a mesh viewer, or import real models
//! (e.g. an actual Stanford bunny) to index instead of the synthetic city.
//!
//! Supported subset: `v x y z` vertices and `f` faces (triangles or convex
//! polygons, which are fan-triangulated; `v/vt/vn` index forms accepted,
//! negative indices resolved per the OBJ spec). Everything else is ignored.

use crate::TriMesh;
use std::fmt::Write as _;

/// Errors produced by the OBJ parser.
#[derive(Debug, PartialEq, Eq)]
pub enum ObjError {
    /// A `v` line did not hold three coordinates.
    BadVertex {
        /// 1-based line number.
        line: usize,
    },
    /// An `f` line held fewer than three vertices or a malformed index.
    BadFace {
        /// 1-based line number.
        line: usize,
    },
    /// A face referenced a vertex that does not exist.
    IndexOutOfRange {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjError::BadVertex { line } => write!(f, "malformed vertex on line {line}"),
            ObjError::BadFace { line } => write!(f, "malformed face on line {line}"),
            ObjError::IndexOutOfRange { line } => {
                write!(f, "face index out of range on line {line}")
            }
        }
    }
}

impl std::error::Error for ObjError {}

/// Serializes a mesh as OBJ text.
pub fn to_obj(mesh: &TriMesh) -> String {
    let mut out = String::with_capacity(mesh.vertex_count() * 24 + mesh.triangle_count() * 16);
    out.push_str("# exported by hdov-mesh\n");
    for v in &mesh.vertices {
        let _ = writeln!(out, "v {} {} {}", v[0], v[1], v[2]);
    }
    for t in &mesh.indices {
        let _ = writeln!(out, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1);
    }
    out
}

/// Parses OBJ text into a mesh (vertices + fan-triangulated faces).
///
/// ```
/// let mesh = hdov_mesh::from_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n").unwrap();
/// assert_eq!(mesh.triangle_count(), 1);
/// assert!(hdov_mesh::to_obj(&mesh).contains("f 1 2 3"));
/// ```
pub fn from_obj(text: &str) -> Result<TriMesh, ObjError> {
    let mut vertices: Vec<[f32; 3]> = Vec::new();
    let mut indices: Vec<[u32; 3]> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut coords = [0.0f32; 3];
                for c in &mut coords {
                    *c = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ObjError::BadVertex { line: line_no })?;
                }
                // A fourth (w) coordinate is legal; ignore it.
                vertices.push(coords);
            }
            Some("f") => {
                let mut face: Vec<u32> = Vec::with_capacity(4);
                for tok in parts {
                    // "idx", "idx/t", "idx/t/n", "idx//n"
                    let idx_str = tok.split('/').next().unwrap_or("");
                    let idx: i64 = idx_str
                        .parse()
                        .map_err(|_| ObjError::BadFace { line: line_no })?;
                    let resolved: i64 = if idx > 0 {
                        idx - 1
                    } else if idx < 0 {
                        vertices.len() as i64 + idx
                    } else {
                        return Err(ObjError::BadFace { line: line_no });
                    };
                    if resolved < 0 || resolved >= vertices.len() as i64 {
                        return Err(ObjError::IndexOutOfRange { line: line_no });
                    }
                    face.push(resolved as u32);
                }
                if face.len() < 3 {
                    return Err(ObjError::BadFace { line: line_no });
                }
                for k in 1..face.len() - 1 {
                    indices.push([face[0], face[k], face[k + 1]]);
                }
            }
            _ => {} // vt, vn, o, g, usemtl, s, mtllib ... ignored
        }
    }
    Ok(TriMesh { vertices, indices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use hdov_geom::Vec3;

    #[test]
    fn round_trip_generated_meshes() {
        for mesh in [
            generate::box_mesh(Vec3::ZERO, Vec3::splat(2.0)),
            generate::icosphere(1.0, 2),
            generate::bunny(1.0, 1, 3),
        ] {
            let obj = to_obj(&mesh);
            let parsed = from_obj(&obj).unwrap();
            assert_eq!(parsed.triangle_count(), mesh.triangle_count());
            assert_eq!(parsed.vertex_count(), mesh.vertex_count());
            assert_eq!(parsed.indices, mesh.indices);
            // f32 -> decimal -> f32 is exact for shortest-round-trip printing.
            assert_eq!(parsed.vertices, mesh.vertices);
        }
    }

    #[test]
    fn parses_quads_by_fan_triangulation() {
        let obj = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
        let m = from_obj(obj).unwrap();
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.indices, vec![[0, 1, 2], [0, 2, 3]]);
    }

    #[test]
    fn parses_slash_forms_and_negative_indices() {
        let obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2//2 -1\n";
        let m = from_obj(obj).unwrap();
        assert_eq!(m.indices, vec![[0, 1, 2]]);
    }

    #[test]
    fn ignores_comments_and_foreign_lines() {
        let obj = "# header\nmtllib x.mtl\nvn 0 0 1\nvt 0 0\no thing\nv 0 0 0 1.0\nv 1 0 0\nv 0 1 0\ns off\nf 1 2 3 # tail comment\n";
        let m = from_obj(obj).unwrap();
        assert_eq!(m.vertex_count(), 3);
        assert_eq!(m.triangle_count(), 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(from_obj("v 1 2\n"), Err(ObjError::BadVertex { line: 1 }));
        // Too few vertices, second index also out of range: the index
        // check fires first.
        assert_eq!(
            from_obj("v 0 0 0\nf 1 2\n"),
            Err(ObjError::IndexOutOfRange { line: 2 })
        );
        assert_eq!(
            from_obj("v 0 0 0\nf 1 1\n"),
            Err(ObjError::BadFace { line: 2 })
        );
        assert_eq!(
            from_obj("v 0 0 0\nf 1 2 9\n"),
            Err(ObjError::IndexOutOfRange { line: 2 })
        );
        assert_eq!(
            from_obj("f 0 1 2\nv 0 0 0\n"),
            Err(ObjError::BadFace { line: 1 })
        );
        let err = from_obj("v a b c\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_is_empty_mesh() {
        let m = from_obj("").unwrap();
        assert!(m.is_empty());
        assert_eq!(to_obj(&m).lines().count(), 1); // header only
    }
}
