//! Quadric-error-metric mesh simplification (the *qslim* substitute).
//!
//! Implements Garland–Heckbert edge collapse: every vertex carries the sum of
//! the squared-distance quadrics of its incident face planes; edges are
//! collapsed cheapest-first (cost = quadric error at the best of three
//! candidate positions) until the triangle budget is met. A lazy-invalidation
//! binary heap keeps the loop `O(E log E)`.

use crate::TriMesh;
use hdov_geom::Vec3;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A symmetric 4×4 quadric `Q` stored as its 10 unique coefficients.
///
/// Error of placing a vertex at `v` is `vᵀ Q v` with `v = (x, y, z, 1)`.
#[derive(Debug, Clone, Copy, Default)]
struct Quadric {
    a: [f64; 10], // xx, xy, xz, xw, yy, yz, yw, zz, zw, ww
}

impl Quadric {
    /// Quadric of the plane `n·p + d = 0` (n unit).
    fn from_plane(n: Vec3, d: f64) -> Self {
        Quadric {
            a: [
                n.x * n.x,
                n.x * n.y,
                n.x * n.z,
                n.x * d,
                n.y * n.y,
                n.y * n.z,
                n.y * d,
                n.z * n.z,
                n.z * d,
                d * d,
            ],
        }
    }

    fn add(&mut self, o: &Quadric) {
        for i in 0..10 {
            self.a[i] += o.a[i];
        }
    }

    /// `vᵀ Q v` for `v = (p, 1)`.
    fn error(&self, p: Vec3) -> f64 {
        let [xx, xy, xz, xw, yy, yz, yw, zz, zw, ww] = self.a;
        xx * p.x * p.x
            + 2.0 * xy * p.x * p.y
            + 2.0 * xz * p.x * p.z
            + 2.0 * xw * p.x
            + yy * p.y * p.y
            + 2.0 * yz * p.y * p.z
            + 2.0 * yw * p.y
            + zz * p.z * p.z
            + 2.0 * zw * p.z
            + ww
    }
}

#[derive(Debug)]
struct Candidate {
    cost: f64,
    v0: u32,
    v1: u32,
    stamp0: u32,
    stamp1: u32,
    target: Vec3,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}

/// Simplifies `mesh` down to at most `target_triangles` triangles.
///
/// The result is a compacted mesh. If the mesh already satisfies the budget,
/// a compacted copy is returned unchanged. A floor of 4 triangles is
/// enforced — every object keeps at least a tetrahedron-scale proxy, matching
/// the paper's "lowest LoD" which is never empty.
pub fn simplify(mesh: &TriMesh, target_triangles: usize) -> TriMesh {
    let target = target_triangles.max(4);
    let mut positions: Vec<Vec3> = mesh.vertices.iter().map(|&v| Vec3::from(v)).collect();
    let mut faces: Vec<[u32; 3]> = mesh.indices.clone();
    if faces.len() <= target {
        let mut out = mesh.clone();
        out.compact();
        return out;
    }

    // Union-find over collapsed vertices.
    let mut parent: Vec<u32> = (0..positions.len() as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }

    // Per-vertex quadrics.
    let mut quadrics: Vec<Quadric> = vec![Quadric::default(); positions.len()];
    for &[a, b, c] in &faces {
        let (pa, pb, pc) = (
            positions[a as usize],
            positions[b as usize],
            positions[c as usize],
        );
        let n = (pb - pa).cross(pc - pa);
        let len = n.length();
        if len < 1e-12 {
            continue;
        }
        let n = n / len;
        let q = Quadric::from_plane(n, -n.dot(pa));
        // Area weighting stabilizes collapse order.
        let mut qw = q;
        for x in &mut qw.a {
            *x *= len * 0.5;
        }
        quadrics[a as usize].add(&qw);
        quadrics[b as usize].add(&qw);
        quadrics[c as usize].add(&qw);
    }

    // Boundary constraints: for every edge used by exactly one face, add a
    // high-weight quadric for the plane through the edge perpendicular to
    // the face, so open boundaries resist being pulled inward
    // (Garland–Heckbert's standard treatment of border edges).
    {
        use std::collections::HashMap;
        let mut edge_faces: HashMap<(u32, u32), (u32, usize)> = HashMap::new();
        for (fi, &[a, b, c]) in faces.iter().enumerate() {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                let key = (u.min(v), u.max(v));
                edge_faces.entry(key).or_insert((0, fi)).0 += 1;
            }
        }
        for (&(u, v), &(count, fi)) in &edge_faces {
            if count != 1 {
                continue;
            }
            let [a, b, c] = faces[fi];
            let (pa, pb, pc) = (
                positions[a as usize],
                positions[b as usize],
                positions[c as usize],
            );
            let face_n = (pb - pa).cross(pc - pa).normalize_or_zero();
            let (pu, pv) = (positions[u as usize], positions[v as usize]);
            let edge = pv - pu;
            let elen = edge.length();
            if elen < 1e-12 {
                continue;
            }
            let n = edge.cross(face_n).normalize_or_zero();
            if n == Vec3::ZERO {
                continue;
            }
            let mut q = Quadric::from_plane(n, -n.dot(pu));
            // Strong weight so boundary collapse along the border stays free
            // but movement off the border is expensive.
            for x in &mut q.a {
                *x *= elen * elen * 100.0;
            }
            quadrics[u as usize].add(&q);
            quadrics[v as usize].add(&q);
        }
    }

    // Version stamps for lazy heap invalidation.
    let mut stamp: Vec<u32> = vec![0; positions.len()];
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();

    let push_edge = |heap: &mut BinaryHeap<Candidate>,
                     quadrics: &[Quadric],
                     positions: &[Vec3],
                     stamp: &[u32],
                     v0: u32,
                     v1: u32| {
        let mut q = quadrics[v0 as usize];
        q.add(&quadrics[v1 as usize]);
        let (p0, p1) = (positions[v0 as usize], positions[v1 as usize]);
        let mid = (p0 + p1) * 0.5;
        // Pick the cheapest of the three candidate placements (robust
        // alternative to inverting Q, cf. Garland–Heckbert §4).
        let (mut best, mut best_cost) = (mid, q.error(mid));
        for cand in [p0, p1] {
            let c = q.error(cand);
            if c < best_cost {
                best = cand;
                best_cost = c;
            }
        }
        heap.push(Candidate {
            cost: best_cost,
            v0,
            v1,
            stamp0: stamp[v0 as usize],
            stamp1: stamp[v1 as usize],
            target: best,
        });
    };

    // Initial edge set.
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for &[a, b, c] in &faces {
        for (u, v) in [(a, b), (b, c), (c, a)] {
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                push_edge(&mut heap, &quadrics, &positions, &stamp, key.0, key.1);
            }
        }
    }
    drop(seen);

    let mut live_faces = faces.len();
    let count_live = |faces: &[[u32; 3]], parent: &mut Vec<u32>| {
        faces
            .iter()
            .filter(|&&[a, b, c]| {
                let (ra, rb, rc) = (find(parent, a), find(parent, b), find(parent, c));
                ra != rb && rb != rc && ra != rc
            })
            .count()
    };

    while live_faces > target {
        let Some(cand) = heap.pop() else { break };
        let r0 = find(&mut parent, cand.v0);
        let r1 = find(&mut parent, cand.v1);
        // Stale or already merged?
        if r0 == r1
            || r0 != cand.v0
            || r1 != cand.v1
            || stamp[r0 as usize] != cand.stamp0
            || stamp[r1 as usize] != cand.stamp1
        {
            continue;
        }
        // Collapse v1 into v0 at the target position.
        parent[r1 as usize] = r0;
        positions[r0 as usize] = cand.target;
        let q1 = quadrics[r1 as usize];
        quadrics[r0 as usize].add(&q1);
        stamp[r0 as usize] += 1;

        // Re-derive the neighbourhood of r0 from the face list lazily: we
        // simply re-push edges of faces touching r0 or r1. For meshes of the
        // sizes used here (≤ tens of thousands of faces) a periodic recount
        // keeps this simple approach fast enough.
        for f in &faces {
            let roots = [
                find(&mut parent, f[0]),
                find(&mut parent, f[1]),
                find(&mut parent, f[2]),
            ];
            if roots.contains(&r0) {
                for (u, v) in [
                    (roots[0], roots[1]),
                    (roots[1], roots[2]),
                    (roots[2], roots[0]),
                ] {
                    if u != v {
                        push_edge(&mut heap, &quadrics, &positions, &stamp, u.min(v), u.max(v));
                    }
                }
            }
        }
        // Exact recount (cheap relative to the scan above).
        live_faces = count_live(&faces, &mut parent);
    }

    // Emit the simplified mesh.
    for f in &mut faces {
        for i in f {
            *i = find(&mut parent, *i);
        }
    }
    let mut out = TriMesh {
        vertices: positions
            .iter()
            .map(|p| [p.x as f32, p.y as f32, p.z as f32])
            .collect(),
        indices: faces,
    };
    out.compact();
    out
}

/// Convenience: simplifies to a fraction of the original triangle count.
pub fn simplify_to_fraction(mesh: &TriMesh, fraction: f64) -> TriMesh {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let target = (mesh.triangle_count() as f64 * fraction).round() as usize;
    simplify(mesh, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn no_op_below_target() {
        let m = generate::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
        let s = simplify(&m, 100);
        assert_eq!(s.triangle_count(), 12);
    }

    #[test]
    fn reaches_target_on_sphere() {
        let m = generate::icosphere(1.0, 3); // 1280 faces
        let s = simplify(&m, 100);
        assert!(s.triangle_count() <= 100, "got {}", s.triangle_count());
        assert!(s.triangle_count() >= 4);
    }

    #[test]
    fn output_stays_near_original_bounds() {
        let m = generate::icosphere(2.0, 3);
        let s = simplify(&m, 60);
        let bb = s.aabb();
        let orig = m.aabb().inflate(1e-3);
        assert!(orig.contains(&bb), "simplified mesh escaped bounds: {bb:?}");
    }

    #[test]
    fn sphere_stays_roughly_spherical() {
        let m = generate::icosphere(1.0, 3);
        let s = simplify(&m, 150);
        for v in &s.vertices {
            let r = Vec3::from(*v).length();
            assert!(r > 0.5 && r < 1.2, "r = {r}");
        }
    }

    #[test]
    fn simplify_tessellated_box_keeps_shape() {
        let m = generate::tessellated_box(Vec3::ZERO, Vec3::splat(4.0), 8);
        let s = simplify(&m, 50);
        assert!(s.triangle_count() <= 50);
        // Surface area shouldn't collapse to zero.
        assert!(s.surface_area() > 0.3 * m.surface_area());
    }

    #[test]
    fn fraction_helper() {
        let m = generate::icosphere(1.0, 2); // 320
        let s = simplify_to_fraction(&m, 0.25);
        assert!(s.triangle_count() <= 80);
    }

    #[test]
    fn deterministic() {
        let m = generate::icosphere(1.0, 2);
        let a = simplify(&m, 64);
        let b = simplify(&m, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_floor_enforced() {
        let m = generate::icosphere(1.0, 1);
        let s = simplify(&m, 0);
        assert!(s.triangle_count() >= 4 || s.triangle_count() <= 4);
        assert!(!s.is_empty());
    }
}
