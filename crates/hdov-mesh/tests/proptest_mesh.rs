//! Property-based tests of meshes, simplification, and LoD chains.

use hdov_geom::Vec3;
use hdov_mesh::{generate, simplify, LodChain};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simplify_respects_target_and_bounds(
        seed in 0u64..1000,
        subdiv in 1u32..3,
        target_frac in 0.05..0.9f64,
    ) {
        let mesh = generate::bunny(1.0, subdiv, seed);
        let target = ((mesh.triangle_count() as f64) * target_frac) as usize;
        let s = simplify(&mesh, target);
        prop_assert!(s.triangle_count() <= target.max(4));
        prop_assert!(s.triangle_count() >= 1);
        // Candidate placements interpolate existing vertices, so the result
        // cannot escape the original bounds.
        prop_assert!(mesh.aabb().inflate(1e-3).contains(&s.aabb()));
        // Indices stay valid.
        let n = s.vertex_count() as u32;
        prop_assert!(s.indices.iter().flatten().all(|&i| i < n));
    }

    #[test]
    fn lod_chain_monotone(seed in 0u64..500, levels in 2usize..5) {
        let mesh = generate::bunny(1.0, 2, seed);
        let chain = LodChain::build(mesh, levels, 0.3);
        for w in chain.levels().windows(2) {
            prop_assert!(w[0].polygons > w[1].polygons);
            prop_assert!(w[0].bytes > w[1].bytes);
        }
        // select() is monotone non-increasing in k.
        let mut prev = usize::MAX;
        for i in 0..=8 {
            let lvl = chain.select(i as f64 / 8.0);
            prop_assert!(lvl <= prev);
            prev = lvl;
        }
    }

    #[test]
    fn weld_never_increases_counts(div in 1usize..6, size in 1.0..50.0f64) {
        let mut m = generate::tessellated_box(Vec3::ZERO, Vec3::splat(size), div);
        let (v0, t0) = (m.vertex_count(), m.triangle_count());
        m.weld(1e-6 * size);
        prop_assert!(m.vertex_count() <= v0);
        prop_assert!(m.triangle_count() <= t0);
        // Surface area is preserved by welding.
        let expect = 6.0 * size * size;
        prop_assert!((m.surface_area() - expect).abs() / expect < 1e-3);
    }

    #[test]
    fn building_generation_within_footprint(
        seed in 0u64..2000,
        w in 4.0..30.0f64,
        d in 4.0..30.0f64,
        h in 5.0..100.0f64,
    ) {
        let m = generate::building(Vec3::ZERO, Vec3::new(w, d, 0.0), h, 3, seed);
        prop_assert!(!m.is_empty());
        let bb = m.aabb();
        prop_assert!(bb.min.x >= -1e-4 && bb.max.x <= w + 1e-4);
        prop_assert!(bb.min.y >= -1e-4 && bb.max.y <= d + 1e-4);
        prop_assert!(bb.min.z >= -1e-4 && bb.max.z <= h + 1e-3);
        prop_assert!((bb.max.z - h).abs() < 1e-3, "building must reach its height");
    }

}
