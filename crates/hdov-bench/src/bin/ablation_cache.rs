//! **Ablation** — node buffer pool.
//!
//! The paper's head-to-head deliberately runs cache-less ("none of the two
//! systems caches the tree nodes in the queries", §5.4). This ablation
//! measures what an LRU node pool would have bought a walkthrough: repeated
//! cell visits re-touch the same upper tree levels, so even a small pool
//! absorbs most node reads.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_walkthrough::{Session, SessionKind};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let session = Session::record(
        eval.scene.viewpoint_region(),
        SessionKind::Normal,
        opts.session_frames(),
        35,
    );
    let eta = 0.001;

    let mut rows = Vec::new();
    for cache_nodes in [0usize, 16, 64, 256, 1024] {
        let mut env = eval.environment(StorageScheme::IndexedVertical);
        if cache_nodes > 0 {
            env.tree_mut().enable_node_cache(cache_nodes);
        }
        let (mut node_reads, mut times) = (Vec::new(), Vec::new());
        for &vp in &session.viewpoints {
            let (_, st) = env.query_with_stats(vp, eta).unwrap();
            node_reads.push(st.node_io.page_reads as f64);
            times.push(st.search_time_ms());
        }
        let hit_rate = env
            .tree_mut()
            .node_cache_stats()
            .map(|(h, m)| 100.0 * h as f64 / (h + m).max(1) as f64)
            .unwrap_or(0.0);
        rows.push(vec![
            if cache_nodes == 0 {
                "off (paper setup)".to_string()
            } else {
                format!("{cache_nodes} nodes")
            },
            format!("{:.2}", mean(node_reads.iter().copied())),
            format!("{hit_rate:.1}%"),
            format!("{:.2}", mean(times.iter().copied())),
        ]);
    }
    print_table(
        &format!(
            "Ablation: node buffer pool over a {}-frame walkthrough (eta = {eta})",
            session.len()
        ),
        &["pool", "node reads/query", "hit rate", "search (ms)"],
        &rows,
    );
    write_csv(
        "ablation_cache",
        &["pool", "node_reads", "hit_rate", "search_ms"],
        &rows,
    );
}
