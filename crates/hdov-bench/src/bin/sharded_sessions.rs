//! **Sharded sessions** — the fault-domain drill behind DESIGN.md §17 and
//! the CI `shard-chaos` job.
//!
//! Replays a fixed set of recorded walkthroughs through a [`ShardRouter`]
//! over N tile shards (`--shards N`) and writes an **answer-only** CSV —
//! per-session polygon totals, served-LoD sums, degraded/failed/shed frame
//! counts; no timing or I/O columns, because shard pools warm differently
//! than one shared pool while the answers must not move. `--shards 0` runs
//! the plain unsharded `SessionServer` on the same sessions and writes the
//! same CSV, so CI can `cmp` a fault-free sharded run byte-for-byte against
//! the unsharded baseline.
//!
//! Chaos mode (`--kill-shard S [--kill-at-frame F --revive-at-frame G]`)
//! arms the router's deterministic kill/revive schedule and asserts the
//! fault-domain contract itself: **zero failed frames**, covers served
//! while the shard is down (`shard_degraded_frames > 0`), the victim's
//! breaker opens, and — once revived — its half-open probe re-closes it.
//! The printed contract lines are re-grepped by CI so a silently weakened
//! binary still fails the job.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{PoolConfig, StorageScheme};
use hdov_shard::{
    BreakerState, RouterConfig, ShardChaos, ShardRouter, ShardedConfig, ShardedServer,
};
use hdov_walkthrough::{ServerConfig, ServerReport, Session, SessionKind, SessionServer};

/// Parses `--flag <v>` / `--flag=<v>` out of the raw argument list.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix(&eq)
            .map(str::to_string)
            .or_else(|| (a == flag).then(|| args.get(i + 1).cloned()).flatten())
    })
}

fn main() {
    let opts = RunOptions::from_args();
    let args: Vec<String> = std::env::args().collect();
    let shards: usize = arg_value(&args, "--shards")
        .map(|v| v.parse().expect("--shards takes a shard count"))
        .unwrap_or(4);
    let kill_shard: Option<usize> =
        arg_value(&args, "--kill-shard").map(|v| v.parse().expect("--kill-shard takes an index"));
    let kill_at: u64 = arg_value(&args, "--kill-at-frame")
        .map(|v| v.parse().expect("--kill-at-frame takes a frame index"))
        .unwrap_or(10);
    let revive_at: u64 = arg_value(&args, "--revive-at-frame")
        .map(|v| v.parse().expect("--revive-at-frame takes a frame index"))
        .unwrap_or(u64::MAX);

    let eval = EvalScene::standard(&opts);
    let n_sessions = if opts.quick { 6 } else { 12 };
    let frames = if opts.quick { 30 } else { 120 };

    let mut built = eval.environment(StorageScheme::IndexedVertical);
    opts.relocate("sharded_sessions", &mut built);
    let env = built.into_shared(PoolConfig::default());
    let sessions: Vec<Session> = (0..n_sessions)
        .map(|i| {
            Session::record(
                eval.scene.viewpoint_region(),
                SessionKind::all()[i % 3],
                frames,
                2003 + i as u64,
            )
        })
        .collect();

    let report: ServerReport = if shards == 0 {
        println!("unsharded baseline: one engine, one pool set");
        let report = SessionServer::new(&env, ServerConfig::default())
            .run(&sessions, 4)
            .expect("unsharded run");
        println!("sharded run: shards=0 degraded_frames=0 timeouts=0 hedged=0 breaker_opens=0");
        report
    } else {
        let mut router =
            ShardRouter::new(&env, shards, RouterConfig::default()).expect("router build");
        if let Some(victim) = kill_shard {
            assert!(victim < shards, "--kill-shard {victim} out of range");
            router.set_chaos(Some(ShardChaos {
                shard: victim,
                kill_at_frame: kill_at,
                revive_at_frame: revive_at,
            }));
            println!(
                "chaos armed: kill shard {victim} at frame {kill_at}, revive at {}",
                if revive_at == u64::MAX {
                    "never".to_string()
                } else {
                    revive_at.to_string()
                }
            );
        }
        let sharded = ShardedServer::new(&router, ShardedConfig::default())
            .run(&sessions, 4)
            .expect("sharded run");
        println!(
            "sharded run: shards={shards} degraded_frames={} timeouts={} hedged={} breaker_opens={}",
            sharded.shard_degraded_frames,
            sharded.shard_timeouts,
            sharded.hedged_reads,
            sharded.breaker_opens
        );
        let states: Vec<String> = (0..shards)
            .map(|s| format!("{:?}", router.breaker_state(s)))
            .collect();
        println!("breaker states: {}", states.join(","));
        if let Some(victim) = kill_shard {
            // The fault-domain contract (ISSUE 10 acceptance), asserted in
            // the binary so the drill cannot silently weaken.
            assert!(
                sharded.shard_degraded_frames > 0,
                "a killed shard must degrade frames to covers"
            );
            assert!(
                sharded.breaker_opens >= 1,
                "the victim's breaker never opened"
            );
            if revive_at != u64::MAX {
                assert_eq!(
                    router.breaker_state(victim),
                    BreakerState::Closed,
                    "post-revival probes must re-close the breaker"
                );
            }
        } else {
            assert_eq!(sharded.shard_degraded_frames, 0, "fault-free run degraded");
            assert_eq!(sharded.breaker_opens, 0, "fault-free run tripped a breaker");
        }
        sharded.report
    };

    let failed: u64 = report.sessions.iter().map(|s| s.failed_frames).sum();
    println!("failed frames: {failed}");
    assert_eq!(failed, 0, "no mode of this drill may fail a frame");

    // Answer-only rows: identical between a fault-free sharded run and the
    // unsharded baseline — CI cmps the two CSVs byte for byte.
    let headers = [
        "session",
        "frames",
        "total_polygons",
        "lod_level_sum",
        "lod_entries",
        "degraded",
        "failed",
        "shed",
    ];
    let rows: Vec<Vec<String>> = report
        .sessions
        .iter()
        .map(|s| {
            vec![
                s.session.to_string(),
                s.search_ms.len().to_string(),
                s.total_polygons.to_string(),
                s.lod_level_sum.to_string(),
                s.lod_entries.to_string(),
                s.degraded_frames.to_string(),
                s.failed_frames.to_string(),
                (s.shed as u8).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("sharded_sessions (shards={shards})"),
        &headers,
        &rows,
    );
    write_csv("sharded_sessions", &headers, &rows);
}
