//! **Figure 12** — search performance across the three walkthrough motion
//! patterns: average per-query search time (12a) and page I/Os (12b),
//! VISUAL vs REVIEW.
//!
//! Paper shape: VISUAL's queries are much faster and cheaper than REVIEW's
//! spatial queries in every session.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_review::{ReviewConfig, ReviewSystem};
use hdov_walkthrough::{
    run_session, FrameModel, ReviewWalkthrough, Session, SessionKind, VisualSystem,
};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let fm = FrameModel::PAPER_ERA;

    let mut visual =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.001).expect("visual");
    let review_sys = ReviewSystem::build(
        &eval.scene,
        ReviewConfig {
            box_size: 400.0,
            ..Default::default()
        },
    )
    .expect("review");
    let mut review = ReviewWalkthrough::new(review_sys, eval.table.clone(), eval.grid.clone());

    let mut rows = Vec::new();
    for (i, kind) in SessionKind::all().into_iter().enumerate() {
        let session = Session::record(
            eval.scene.viewpoint_region(),
            kind,
            opts.session_frames(),
            12 + i as u64,
        );
        let mv = run_session(&mut visual, &session, &fm).unwrap();
        let mr = run_session(&mut review, &session, &fm).unwrap();
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.2}", mv.avg_search_time_ms()),
            format!("{:.2}", mr.avg_search_time_ms()),
            format!("{:.1}", mv.avg_page_reads()),
            format!("{:.1}", mr.avg_page_reads()),
        ]);
    }
    print_table(
        "Figure 12: search performance across walkthrough sessions",
        &[
            "session",
            "12a VISUAL search (ms)",
            "12a REVIEW search (ms)",
            "12b VISUAL I/Os",
            "12b REVIEW I/Os",
        ],
        &rows,
    );
    println!(
        "paper shape: VISUAL queries much faster than REVIEW's spatial queries in all sessions"
    );
    write_csv(
        "fig12_sessions",
        &[
            "session",
            "visual_ms",
            "review_ms",
            "visual_ios",
            "review_ios",
        ],
        &rows,
    );
}
