//! **Table 2** — storage space required by the three storage schemes.
//!
//! Paper (default dataset): horizontal 4 GB, vertical 267 MB,
//! indexed-vertical 152.8 MB — "the space taken by the horizontal scheme is
//! very huge … almost 20 times that of the other two schemes".

use hdov_bench::{fmt_bytes, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    println!(
        "scene: {} objects, {} cells, {} model bytes",
        eval.scene.len(),
        eval.grid.cell_count(),
        fmt_bytes(eval.scene.total_model_bytes())
    );

    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    for scheme in StorageScheme::all() {
        let env = eval.environment(scheme);
        let bytes = env.vstore().storage_bytes();
        sizes.push(bytes);
        rows.push(vec![
            scheme.to_string(),
            bytes.to_string(),
            fmt_bytes(bytes),
            paper_row(scheme).to_string(),
        ]);
    }
    print_table(
        "Table 2: storage space required by the schemes",
        &["scheme", "bytes", "measured", "paper (full scale)"],
        &rows,
    );
    println!(
        "ratios: horizontal/vertical = {:.1}x, vertical/indexed = {:.2}x (paper: ~15x, ~1.75x)",
        sizes[0] as f64 / sizes[1] as f64,
        sizes[1] as f64 / sizes[2] as f64
    );
    write_csv("table2_storage", &["scheme", "bytes"], &rows);
}

fn paper_row(s: StorageScheme) -> &'static str {
    match s {
        StorageScheme::Horizontal => "4 GB",
        StorageScheme::Vertical => "267 MB",
        StorageScheme::IndexedVertical => "152.8 MB",
    }
}
