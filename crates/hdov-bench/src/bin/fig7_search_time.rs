//! **Figure 7** — visibility-query search time vs η for the three storage
//! schemes and the naïve (cell, list-of-objects) method.
//!
//! Paper shape: all HDoV curves fall as η grows; η = 0 ≈ naïve; the
//! horizontal scheme is worst (scattered V-pages); vertical ≈
//! indexed-vertical with the latter marginally better.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions, ETA_SWEEP};
use hdov_core::StorageScheme;

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count(), 7);
    println!(
        "{} visibility queries per point, {} objects, {} cells, backend {}",
        viewpoints.len(),
        eval.scene.len(),
        eval.grid.cell_count(),
        opts.backend.label()
    );

    let mut envs: Vec<_> = StorageScheme::all()
        .into_iter()
        .map(|s| {
            let mut env = eval.environment(s);
            opts.relocate("fig7_search_time", &mut env);
            (s, env)
        })
        .collect();

    let mut rows = Vec::new();
    let mut wall_rows = Vec::new();
    for eta in ETA_SWEEP {
        let mut row = vec![format!("{eta}")];
        let mut wall_row = vec![format!("{eta}")];
        for (_, env) in envs.iter_mut() {
            let t0 = std::time::Instant::now();
            let t = mean(viewpoints.iter().map(|&vp| {
                let (_, st) = env.query_with_stats(vp, eta).unwrap();
                st.search_time_ms()
            }));
            wall_row.push(format!("{}", t0.elapsed().as_nanos()));
            row.push(format!("{t:.2}"));
        }
        // Naïve baseline (storage-agnostic per-object access; run against
        // the indexed store whose sparse segments model its per-cell lists).
        let naive_env = &mut envs[2].1;
        let t0 = std::time::Instant::now();
        let tn = mean(viewpoints.iter().map(|&vp| {
            let (_, st) = naive_env.query_naive(vp).unwrap();
            st.search_time_ms()
        }));
        wall_row.push(format!("{}", t0.elapsed().as_nanos()));
        row.push(format!("{tn:.2}"));
        rows.push(row);
        wall_rows.push(wall_row);
    }
    print_table(
        "Figure 7: average search time (ms) vs eta",
        &["eta", "horizontal", "vertical", "indexed-vertical", "naive"],
        &rows,
    );
    println!("paper shape: curves fall with eta; eta=0 ~= naive; horizontal worst; indexed best");
    write_csv(
        "fig7_search_time",
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "fig7_search_time",
        1,
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
    // Real wall-clock I/O of the file-backed run — a separate, never-gated
    // snapshot (`*.wall_ns` is on the tolerance ignore list); the CSV above
    // stays purely simulated and byte-identical across backends.
    if opts.backend.is_file() {
        hdov_bench::write_metrics_snapshot(
            "fig7_search_time_wall",
            1,
            &[
                "eta",
                "horizontal.wall_ns",
                "vertical.wall_ns",
                "indexed.wall_ns",
                "naive.wall_ns",
            ],
            &wall_rows,
        );
    }
}
