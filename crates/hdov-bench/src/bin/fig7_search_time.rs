//! **Figure 7** — visibility-query search time vs η for the three storage
//! schemes and the naïve (cell, list-of-objects) method.
//!
//! Paper shape: all HDoV curves fall as η grows; η = 0 ≈ naïve; the
//! horizontal scheme is worst (scattered V-pages); vertical ≈
//! indexed-vertical with the latter marginally better.

use hdov_bench::{answers_digest, mean, print_table, write_csv, EvalScene, RunOptions, ETA_SWEEP};
use hdov_core::StorageScheme;

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count(), 7);
    println!(
        "{} visibility queries per point, {} objects, {} cells, backend {}, codec {}",
        viewpoints.len(),
        eval.scene.len(),
        eval.grid.cell_count(),
        opts.backend.label(),
        opts.codec.label()
    );

    let mut envs: Vec<_> = StorageScheme::all()
        .into_iter()
        .map(|s| {
            let mut env = eval.environment(s);
            opts.relocate("fig7_search_time", &mut env);
            (s, env)
        })
        .collect();

    let mut rows = Vec::new();
    let mut wall_rows = Vec::new();
    let mut answer_rows = Vec::new();
    for eta in ETA_SWEEP {
        let mut row = vec![format!("{eta}")];
        let mut wall_row = vec![format!("{eta}")];
        let mut answer_row = vec![format!("{eta}")];
        for (_, env) in envs.iter_mut() {
            let t0 = std::time::Instant::now();
            let mut digest = 0u64;
            let t = mean(viewpoints.iter().map(|&vp| {
                let (r, st) = env.query_with_stats(vp, eta).unwrap();
                digest = digest.rotate_left(1) ^ answers_digest(&r, &st);
                st.search_time_ms()
            }));
            wall_row.push(format!("{}", t0.elapsed().as_nanos()));
            row.push(format!("{t:.2}"));
            answer_row.push(format!("{digest:016x}"));
        }
        // Naïve baseline (storage-agnostic per-object access; run against
        // the indexed store whose sparse segments model its per-cell lists).
        let naive_env = &mut envs[2].1;
        let t0 = std::time::Instant::now();
        let mut digest = 0u64;
        let tn = mean(viewpoints.iter().map(|&vp| {
            let (r, st) = naive_env.query_naive(vp).unwrap();
            digest = digest.rotate_left(1) ^ answers_digest(&r, &st);
            st.search_time_ms()
        }));
        wall_row.push(format!("{}", t0.elapsed().as_nanos()));
        row.push(format!("{tn:.2}"));
        answer_row.push(format!("{digest:016x}"));
        rows.push(row);
        wall_rows.push(wall_row);
        answer_rows.push(answer_row);
    }
    print_table(
        "Figure 7: average search time (ms) vs eta",
        &["eta", "horizontal", "vertical", "indexed-vertical", "naive"],
        &rows,
    );
    println!("paper shape: curves fall with eta; eta=0 ~= naive; horizontal worst; indexed best");
    write_csv(
        "fig7_search_time",
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
    // Codec-invariant answer digests: the CI codec-equivalence job compares
    // this file byte-for-byte between `--codec raw` and `--codec delta`.
    write_csv(
        "fig7_answers",
        &["eta", "horizontal", "vertical", "indexed", "naive"],
        &answer_rows,
    );
    hdov_bench::write_metrics_snapshot(
        "fig7_search_time",
        1,
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
    // Real wall-clock I/O of the file-backed run — a separate, never-gated
    // snapshot (`*.wall_ns` is on the tolerance ignore list); the CSV above
    // stays purely simulated and byte-identical across backends.
    if opts.backend.is_file() {
        hdov_bench::write_metrics_snapshot(
            "fig7_search_time_wall",
            1,
            &[
                "eta",
                "horizontal.wall_ns",
                "vertical.wall_ns",
                "indexed.wall_ns",
                "naive.wall_ns",
            ],
            &wall_rows,
        );
    }
}
