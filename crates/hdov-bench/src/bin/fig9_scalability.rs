//! **Figure 9** — scalability of the visibility query with dataset size
//! (400 MB → 1.6 GB nominal): average search time (9a) and I/O cost (9b) of
//! the traversal only, models excluded.
//!
//! Paper shape: both grow only marginally with a 4× larger dataset.

use hdov_bench::{fmt_bytes, mean, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_scene::DatasetPreset;

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let queries = if opts.quick { 100 } else { 1000 };
    let eta = 0.001;

    let presets: &[DatasetPreset] = if opts.quick {
        &[DatasetPreset::Nominal400MB, DatasetPreset::Nominal1600MB]
    } else {
        &DatasetPreset::all()
    };

    let mut rows = Vec::new();
    for preset in presets {
        let eval = EvalScene::from_city(preset.config().seed(2003), &opts);
        let mut env = eval.environment(StorageScheme::IndexedVertical);
        let viewpoints = eval.random_viewpoints(queries, 9);
        let (mut t, mut io) = (Vec::new(), Vec::new());
        for &vp in &viewpoints {
            let (_, st) = env.query_with_stats(vp, eta).unwrap();
            t.push(st.traversal_time_ms());
            io.push(st.light_io().page_reads as f64);
        }
        rows.push(vec![
            format!("{} MB (nominal)", preset.nominal_mb()),
            fmt_bytes(eval.scene.total_model_bytes()),
            eval.scene.len().to_string(),
            format!("{:.3}", mean(t.iter().copied())),
            format!("{:.2}", mean(io.iter().copied())),
        ]);
    }
    print_table(
        &format!("Figure 9: scalability of the visibility query (eta = {eta}, {queries} queries)"),
        &[
            "dataset",
            "actual bytes",
            "objects",
            "9a avg search time (ms)",
            "9b avg light I/Os",
        ],
        &rows,
    );
    println!("paper shape: near-flat growth across the 4x size range");
    write_csv(
        "fig9_scalability",
        &[
            "dataset_mb",
            "actual_bytes",
            "objects",
            "search_ms",
            "light_ios",
        ],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "fig9_scalability",
        1,
        &[
            "dataset_mb",
            "actual_bytes",
            "objects",
            "search_ms",
            "light_ios",
        ],
        &rows,
    );
}
