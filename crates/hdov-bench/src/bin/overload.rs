//! **Overload** — graceful degradation when demand exceeds capacity.
//!
//! Beyond the paper: §5.4 replays one walkthrough at a time, but a deployed
//! server faces more visitors than it has capacity for. This harness fixes a
//! serving capacity (admission slots) and sweeps the offered load from 0.5×
//! to 4× of it, with the full overload-protection stack on:
//!
//! * a per-frame [`QueryBudget`] — a frame that would run long serves the
//!   remaining subtrees as internal LoDs instead;
//! * the closed-loop AIMD η controller — deadline misses push η coarser,
//!   headroom pulls it back;
//! * strict admission — sessions beyond the slot count are shed to the
//!   root's internal LoD (coarse frames, zero I/O, never an error).
//!
//! Expected shape: p99 *frame* time does not grow with load — within 2×
//! the deadline at 4× capacity (at low load the p99 sits on the few
//! cold-start frames, a fixed cost that dilutes as load adds frames) —
//! while fidelity — the mean served-LoD rank, 0 = finest — degrades
//! smoothly as load grows past capacity. Below capacity
//! nothing is shed and no read-error degradation occurs (budget stops on
//! cold-start frames are the budget doing its job and are reported as their
//! own column); availability is 100% (zero failed frames) everywhere.
//!
//! Output: `results/overload.csv`. Frame times are simulated (the same
//! deterministic cost currency as every other harness number); shed counts
//! above capacity depend on worker interleaving, which is why CI gates this
//! bench structurally (zero/nonzero, bounds) rather than bit-exactly.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{PoolConfig, QueryBudget, StorageScheme};
use hdov_walkthrough::{
    AdmissionConfig, EtaControlConfig, ServerConfig, Session, SessionKind, SessionServer,
};

/// Serving capacity: sessions allowed to drive queries concurrently.
const SLOTS: usize = 4;
/// Frame-time deadline for the η controller (simulated ms).
const TARGET_FRAME_MS: f64 = 50.0;

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let frames = if opts.quick { 30 } else { 120 };

    let env = eval
        .environment(StorageScheme::IndexedVertical)
        .into_shared(PoolConfig::default());

    let cfg = ServerConfig {
        // The budget is what bounds the tail: the η controller only adapts
        // *between* frames, so the cold first frames of a session (whole
        // cell fetched at once) would blow far past the deadline without a
        // mid-frame stop.
        budget: QueryBudget::sim_ms(TARGET_FRAME_MS),
        control: Some(EtaControlConfig::for_target_ms(TARGET_FRAME_MS)),
        admission: Some(AdmissionConfig::strict(SLOTS)),
        ..Default::default()
    };

    let mut rows = Vec::new();
    let mut p99_at_4x = 0.0;
    for &(label, factor) in &[("0.5x", 0.5), ("1x", 1.0), ("2x", 2.0), ("4x", 4.0)] {
        let n_sessions = ((SLOTS as f64 * factor) as usize).max(1);
        let sessions: Vec<Session> = (0..n_sessions)
            .map(|i| {
                Session::record(
                    eval.scene.viewpoint_region(),
                    SessionKind::all()[i % 3],
                    frames,
                    2003 + i as u64,
                )
            })
            .collect();
        // Every session gets a worker, so all of them race for the slots at
        // once — the offered load really is `factor` × capacity.
        let run_env = env.fork_with_private_pools();
        let report = SessionServer::new(&run_env, cfg)
            .run(&sessions, n_sessions)
            .expect("overload run");

        let failed: u64 = report.sessions.iter().map(|s| s.failed_frames).sum();
        let p99 = report.frame_ms_quantile(0.99);
        if factor == 4.0 {
            p99_at_4x = p99;
        }
        rows.push(vec![
            label.to_string(),
            n_sessions.to_string(),
            SLOTS.to_string(),
            report.shed_sessions().to_string(),
            format!("{p99:.3}"),
            format!("{:.3}", report.mean_frame_ms()),
            format!("{:.4}", report.mean_served_lod()),
            report.deadline_misses().to_string(),
            report.budget_stops().to_string(),
            failed.to_string(),
        ]);
    }

    print_table(
        "Overload: offered load vs fixed serving capacity",
        &[
            "load",
            "sessions",
            "slots",
            "shed",
            "p99 frame (ms)",
            "mean frame (ms)",
            "mean served LoD",
            "deadline misses",
            "budget stops",
            "failed frames",
        ],
        &rows,
    );
    println!(
        "p99 frame at 4x capacity: {:.3} ms (bound: 2x target = {:.1} ms)",
        p99_at_4x,
        2.0 * TARGET_FRAME_MS
    );
    println!(
        "expected shape: zero shed/degrade at or below capacity; above it, \
         shedding rises and mean served LoD coarsens while p99 stays bounded"
    );
    let headers = [
        "load",
        "sessions",
        "slots",
        "shed",
        "p99_frame_ms",
        "mean_frame_ms",
        "mean_served_lod",
        "deadline_misses",
        "budget_stops",
        "failed_frames",
    ];
    write_csv("overload", &headers, &rows);
    hdov_bench::write_metrics_snapshot("overload", 3, &headers, &rows);
}
