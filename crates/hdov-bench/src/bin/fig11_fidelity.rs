//! **Figure 11** — visual fidelity comparison (quantitative substitute for
//! the paper's screenshots).
//!
//! Paper: (a) original models; (b) REVIEW with 200 m boxes loses far
//! objects; (c) VISUAL at η = 0.001 has no obvious loss. We measure
//! DoV-weighted coverage and missed-visible-object counts over a session.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_review::{ReviewConfig, ReviewSystem};
use hdov_walkthrough::{
    run_session, FrameModel, ReviewWalkthrough, Session, SessionKind, VisualSystem,
    WalkthroughMetrics,
};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let session = Session::record(
        eval.scene.viewpoint_region(),
        SessionKind::Normal,
        opts.session_frames(),
        11,
    );
    let fm = FrameModel::PAPER_ERA;

    let mut rows = Vec::new();
    fn row(label: &str, m: &WalkthroughMetrics, polys: f64) -> Vec<String> {
        vec![
            label.to_string(),
            format!("{:.4}", m.avg_dov_coverage()),
            format!("{:.4}", m.min_dov_coverage()),
            format!("{:.1}", m.avg_missed_objects()),
            format!("{polys:.0}"),
        ]
    }

    // (a) "original models": every visible object at full detail — the
    // ground-truth reference rendering.
    let full_detail_polys: f64 = {
        let env = eval.environment(StorageScheme::IndexedVertical);
        let mut acc = 0.0;
        for &vp in &session.viewpoints {
            let cell = env.cell_of(vp);
            let visible = eval.table.cell(cell);
            acc += visible
                .iter()
                .map(|&(o, _)| eval.scene.chain_of(o as u64).highest().polygons as f64)
                .sum::<f64>();
        }
        acc / session.len() as f64
    };
    rows.push(vec![
        "(a) original models".into(),
        "1.0000".into(),
        "1.0000".into(),
        "0.0".into(),
        format!("{full_detail_polys:.0}"),
    ]);

    // (b) REVIEW, 200 m boxes.
    let review_sys = ReviewSystem::build(
        &eval.scene,
        ReviewConfig {
            box_size: 200.0,
            ..Default::default()
        },
    )
    .unwrap();
    let mut review = ReviewWalkthrough::new(review_sys, eval.table.clone(), eval.grid.clone());
    let mr = run_session(&mut review, &session, &fm).unwrap();
    rows.push(row("(b) REVIEW (200m boxes)", &mr, mr.avg_polygons()));

    // (c) VISUAL, eta = 0.001.
    let mut visual =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.001).unwrap();
    let mv = run_session(&mut visual, &session, &fm).unwrap();
    rows.push(row("(c) VISUAL (eta=0.001)", &mv, mv.avg_polygons()));

    print_table(
        "Figure 11: visual fidelity (DoV coverage in [0,1]; 1 = nothing visible lost)",
        &[
            "rendering",
            "avg DoV coverage",
            "worst frame",
            "avg missed objects",
            "avg polygons",
        ],
        &rows,
    );
    println!("paper shape: REVIEW misses far objects; VISUAL at eta=0.001 loses ~nothing");
    write_csv(
        "fig11_fidelity",
        &[
            "rendering",
            "avg_coverage",
            "min_coverage",
            "avg_missed",
            "avg_polygons",
        ],
        &rows,
    );
}
