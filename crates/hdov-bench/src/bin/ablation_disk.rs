//! **Ablation** — disk technology sensitivity: does the storage-scheme
//! ranking of Fig. 7 survive on a seek-cheap modern device?
//!
//! The horizontal scheme loses on a 2002 disk because its V-pages seek; on
//! an NVMe-like device (80 µs positioning) the penalty shrinks. This
//! ablation replays the Fig. 7 comparison under both cost models.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{HdovBuildConfig, HdovEnvironment, StorageScheme};
use hdov_storage::DiskModel;

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count() / 4, 33);
    let eta = 0.001;

    let disks = [
        ("2002 disk (8ms seek)", DiskModel::PAPER_ERA),
        ("modern SSD (80us)", DiskModel::MODERN_SSD),
    ];
    let mut rows = Vec::new();
    for (disk_label, disk) in disks {
        let mut row = vec![disk_label.to_string()];
        let mut base = None;
        for scheme in StorageScheme::all() {
            let cfg = HdovBuildConfig {
                disk,
                ..eval.build_cfg.clone()
            };
            let mut env = HdovEnvironment::build_with_table(
                &eval.scene,
                eval.grid.clone(),
                cfg,
                scheme,
                eval.table.clone(),
            )
            .expect("build");
            let t = mean(viewpoints.iter().map(|&vp| {
                let (_, st) = env.query_with_stats(vp, eta).unwrap();
                st.search_time_ms()
            }));
            base.get_or_insert(t);
            row.push(format!("{t:.2}"));
        }
        rows.push(row);
    }
    print_table(
        &format!("Ablation: disk model sensitivity (search ms at eta = {eta})"),
        &["disk", "horizontal", "vertical", "indexed-vertical"],
        &rows,
    );
    println!(
        "expected: ranking is preserved on both devices, but the horizontal \
         scheme's seek penalty collapses on the SSD"
    );
    write_csv(
        "ablation_disk",
        &["disk", "horizontal_ms", "vertical_ms", "indexed_ms"],
        &rows,
    );
}
