//! **Ablation** — the internal-LoD termination guard of Fig. 3 line 7:
//! the paper's Eq. 4 log-form vs the exact Eq. 3 polygon comparison vs no
//! guard at all ("always terminate when DoV ≤ η").
//!
//! The guard exists because "the LoD of a node which has small DoV may
//! contain more polygons than the sum of its visible descendants" (§3.3).
//! This ablation measures how each variant trades rendered polygons against
//! model I/O across the η sweep.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions, ETA_SWEEP};
use hdov_core::{HdovBuildConfig, HdovEnvironment, StorageScheme, TerminationHeuristic};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count() / 4, 32);

    let variants = [
        ("Eq. 4 (paper)", TerminationHeuristic::Eq4),
        ("exact Eq. 3", TerminationHeuristic::Exact),
        ("no guard", TerminationHeuristic::Always),
    ];
    let mut envs: Vec<(&str, HdovEnvironment)> = variants
        .into_iter()
        .map(|(label, heuristic)| {
            let cfg = HdovBuildConfig {
                heuristic,
                ..eval.build_cfg.clone()
            };
            let env = HdovEnvironment::build_with_table(
                &eval.scene,
                eval.grid.clone(),
                cfg,
                StorageScheme::IndexedVertical,
                eval.table.clone(),
            )
            .expect("build");
            (label, env)
        })
        .collect();

    let mut rows = Vec::new();
    for eta in ETA_SWEEP {
        let mut row = vec![format!("{eta}")];
        for (_, env) in envs.iter_mut() {
            let (mut polys, mut heavy) = (Vec::new(), Vec::new());
            for &vp in &viewpoints {
                let (r, st) = env.query_with_stats(vp, eta).unwrap();
                polys.push(r.total_polygons() as f64);
                heavy.push(st.heavy_io().page_reads as f64);
            }
            row.push(format!("{:.0}", mean(polys)));
            row.push(format!("{:.1}", mean(heavy)));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: internal-LoD termination guard (polygons | heavy I/Os per query)",
        &[
            "eta",
            "Eq4 polys",
            "Eq4 I/O",
            "exact polys",
            "exact I/O",
            "no-guard polys",
            "no-guard I/O",
        ],
        &rows,
    );
    println!(
        "expected: 'no guard' minimizes I/O but can inflate polygons at large eta; \
         Eq. 4 and exact stay close, exact slightly safer on polygons"
    );
    write_csv(
        "ablation_heuristic",
        &[
            "eta",
            "eq4_polys",
            "eq4_io",
            "exact_polys",
            "exact_io",
            "always_polys",
            "always_io",
        ],
        &rows,
    );
}
