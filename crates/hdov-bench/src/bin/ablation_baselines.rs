//! **Ablation** — three-way baseline comparison: VISUAL (HDoV-tree) vs
//! REVIEW (window queries, VLDB'01) vs the LoD-R-tree (related work \[8\]).
//!
//! The paper argues (§2) that the LoD-R-tree "leads to high frame rates as
//! long as the user stays within the viewing-frustum \[but\] its performance
//! degenerates significantly as the user view changes", while REVIEW is
//! view-independent but fetches hidden objects, and the HDoV-tree dominates
//! both. The three sessions of Fig. 12 separate these regimes: session 2
//! (turning) is the LoD-R-tree's worst case.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_review::{LodRTreeConfig, LodRTreeSystem, ReviewConfig, ReviewSystem};
use hdov_walkthrough::{
    run_session, FrameModel, LodRTreeWalkthrough, ReviewWalkthrough, Session, SessionKind,
    VisualSystem, WalkthroughMetrics, WalkthroughSystem,
};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let fm = FrameModel::PAPER_ERA;

    let mut visual =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.001).expect("visual");
    let review_sys = ReviewSystem::build(
        &eval.scene,
        ReviewConfig {
            box_size: 400.0,
            ..Default::default()
        },
    )
    .expect("review");
    let mut review = ReviewWalkthrough::new(review_sys, eval.table.clone(), eval.grid.clone());
    let lod_sys = LodRTreeSystem::build(
        &eval.scene,
        LodRTreeConfig {
            view_range: 400.0,
            bands: 3,
            ..Default::default()
        },
    )
    .expect("lod-r-tree");
    let mut lodr = LodRTreeWalkthrough::new(lod_sys, eval.table.clone(), eval.grid.clone());

    let mut rows = Vec::new();
    for (i, kind) in SessionKind::all().into_iter().enumerate() {
        let session = Session::record(
            eval.scene.viewpoint_region(),
            kind,
            opts.session_frames(),
            40 + i as u64,
        );
        let systems: Vec<(&mut dyn WalkthroughSystem, &str)> = vec![
            (&mut visual, "VISUAL"),
            (&mut review, "REVIEW"),
            (&mut lodr, "LoD-R-tree"),
        ];
        for (sys, label) in systems {
            let m: WalkthroughMetrics = run_session(sys, &session, &fm).unwrap();
            rows.push(vec![
                kind.label().to_string(),
                label.to_string(),
                format!("{:.2}", m.avg_frame_time_ms()),
                format!("{:.2}", m.max_frame_time_ms()),
                format!("{:.4}", m.avg_dov_coverage()),
                format!("{:.1}", m.avg_missed_objects()),
            ]);
        }
    }
    print_table(
        "Ablation: VISUAL vs REVIEW vs LoD-R-tree across motion patterns",
        &[
            "session",
            "system",
            "avg frame (ms)",
            "max spike (ms)",
            "DoV coverage",
            "missed/frame",
        ],
        &rows,
    );
    println!(
        "expected: VISUAL dominates everywhere; the LoD-R-tree is competitive \
         on the normal walk but degenerates on the turning session (view-swung \
         refetch storms) and always misses out-of-band visible objects"
    );
    write_csv(
        "ablation_baselines",
        &[
            "session", "system", "avg_ms", "max_ms", "coverage", "missed",
        ],
        &rows,
    );
}
