//! **Concurrent sessions** — multi-session query throughput over ONE shared,
//! immutable HDoV-tree.
//!
//! Beyond the paper: §5.4 replays one walkthrough at a time, but a deployed
//! virtual-city server hosts many visitors of the same scene. This harness
//! freezes one environment (`SharedEnvironment`) and replays a fixed set of
//! recorded sessions on 1/2/4/8 worker threads in two modes:
//!
//! * `shared` — all sessions share one lock-striped buffer pool, so pages
//!   warmed by one visitor are hits for the others (plus motion-vector
//!   prefetch along each path);
//! * `private` — the per-session-pool baseline: every session queries a cold
//!   private fork of the pools (same frozen data, no sharing).
//!
//! Two throughput figures are reported: `wall_qps` (real elapsed time —
//! scales with threads only on a multi-core host) and `sim_qps` (the worker
//! pool replayed in *simulated* time, the same currency as every other
//! number in this harness; carries the thread-scaling result on any
//! machine). Expected shape: `sim_qps` scales with threads, and the shared
//! pool's hit rate beats the private baseline at every thread count — its
//! p99 also drops, because another visitor has usually warmed the cold
//! pages.
//!
//! Output: `results/concurrent_sessions.csv`.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{PoolConfig, StorageScheme};
use hdov_walkthrough::{ServerConfig, ServerReport, Session, SessionKind, SessionServer};
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let n_sessions = if opts.quick { 8 } else { 16 };
    let frames = if opts.quick { 40 } else { 200 };

    let mut built = eval.environment(StorageScheme::IndexedVertical);
    opts.relocate("concurrent_sessions", &mut built);
    let env = built.into_shared(PoolConfig::default());
    let sessions: Vec<Session> = (0..n_sessions)
        .map(|i| {
            Session::record(
                eval.scene.viewpoint_region(),
                SessionKind::all()[i % 3],
                frames,
                2003 + i as u64,
            )
        })
        .collect();
    let cfg = ServerConfig::default();

    let mut rows = Vec::new();
    let mut sim_qps_shared_1 = 0.0;
    let mut sim_qps_shared_4 = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        // Shared pool: fresh fork per run so every row starts cold.
        let run_env = env.fork_with_private_pools();
        let report = SessionServer::new(&run_env, cfg)
            .run(&sessions, threads)
            .expect("shared run");
        if threads == 1 {
            sim_qps_shared_1 = report.simulated_qps();
        }
        if threads == 4 {
            sim_qps_shared_4 = report.simulated_qps();
        }
        let (hits, misses) = run_env.pool_hit_stats();
        rows.push(row("shared", threads, n_sessions, &report, hits, misses));

        // Per-session-pool baseline: each session runs against its own cold
        // fork, so nothing is shared between visitors. Threads still run
        // sessions concurrently (each on private pools) for a fair
        // wall-clock comparison.
        let forks: Vec<_> = sessions
            .iter()
            .map(|_| env.fork_with_private_pools())
            .collect();
        let start = std::time::Instant::now();
        let next = AtomicUsize::new(0);
        let outcomes: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let forks = &forks;
                    let sessions = &sessions;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= sessions.len() {
                                break done;
                            }
                            let r = SessionServer::new(&forks[i], cfg)
                                .run(std::slice::from_ref(&sessions[i]), 1)
                                .expect("private run");
                            done.extend(r.sessions.into_iter().map(|mut o| {
                                o.session = i;
                                o
                            }));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut outcomes = outcomes;
        // Completion order varies with scheduling; session order keeps the
        // simulated makespan deterministic.
        outcomes.sort_by_key(|o| o.session);
        let report = ServerReport {
            sessions: outcomes,
            wall_seconds: start.elapsed().as_secs_f64(),
            threads: threads.min(n_sessions),
            backpressure: Default::default(),
        };
        let (mut hits, mut misses) = (0u64, 0u64);
        for f in &forks {
            let (h, m) = f.pool_hit_stats();
            hits += h;
            misses += m;
        }
        rows.push(row("private", threads, n_sessions, &report, hits, misses));
    }

    print_table(
        "Concurrent sessions: shared pool vs per-session pools",
        &[
            "mode",
            "threads",
            "sessions",
            "wall qps",
            "sim qps",
            "p50 search (ms)",
            "p99 search (ms)",
            "pool hit rate",
            "pool lookups",
            "page reads",
        ],
        &rows,
    );
    println!(
        "simulated speedup (shared, 4 threads vs 1): {:.2}x",
        if sim_qps_shared_1 > 0.0 {
            sim_qps_shared_4 / sim_qps_shared_1
        } else {
            0.0
        }
    );
    println!(
        "expected shape: sim qps scales with threads; shared hit rate > private at every thread count"
    );
    write_csv(
        "concurrent_sessions",
        &[
            "mode",
            "threads",
            "sessions",
            "wall_qps",
            "sim_qps",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "pool_lookups",
            "page_reads",
        ],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "concurrent_sessions",
        2,
        &[
            "mode",
            "threads",
            "sessions",
            "wall_qps",
            "sim_qps",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "pool_lookups",
            "page_reads",
        ],
        &rows,
    );
}

fn row(
    mode: &str,
    threads: usize,
    n_sessions: usize,
    report: &ServerReport,
    hits: u64,
    misses: u64,
) -> Vec<String> {
    vec![
        mode.to_string(),
        threads.to_string(),
        n_sessions.to_string(),
        format!("{:.0}", report.qps()),
        format!("{:.0}", report.simulated_qps()),
        format!("{:.3}", report.search_ms_quantile(0.5)),
        format!("{:.3}", report.search_ms_quantile(0.99)),
        format!("{:.4}", hits as f64 / (hits + misses).max(1) as f64),
        (hits + misses).to_string(),
        report.page_reads().to_string(),
    ]
}
