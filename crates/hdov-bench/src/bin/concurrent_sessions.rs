//! **Concurrent sessions** — multi-session query throughput over ONE shared,
//! immutable HDoV-tree.
//!
//! Beyond the paper: §5.4 replays one walkthrough at a time, but a deployed
//! virtual-city server hosts many visitors of the same scene. This harness
//! freezes one environment (`SharedEnvironment`) and replays a fixed set of
//! recorded sessions on 1/2/4/8 worker threads in two modes:
//!
//! * `shared` — all sessions share one lock-striped buffer pool, so pages
//!   warmed by one visitor are hits for the others (plus motion-vector
//!   prefetch along each path);
//! * `private` — the per-session-pool baseline: every session queries a cold
//!   private fork of the pools (same frozen data, no sharing).
//!
//! Two throughput figures are reported: `wall_qps` (real elapsed time —
//! scales with threads only on a multi-core host) and `sim_qps` (the worker
//! pool replayed in *simulated* time, the same currency as every other
//! number in this harness; carries the thread-scaling result on any
//! machine). Expected shape: `sim_qps` scales with threads, and the shared
//! pool's hit rate beats the private baseline at every thread count — its
//! p99 also drops, because another visitor has usually warmed the cold
//! pages.
//!
//! Output: `results/concurrent_sessions.csv`.
//!
//! Self-healing drill (`--backend file:pread@2 --corrupt-pages N [--scrub]`):
//! after the stores are open, flip one byte in `N` data pages spread across
//! the *primary* replica files. The session runs must then serve every frame
//! by failing over to the healthy copy and repairing the primary in place —
//! the binary asserts **zero degraded frames** and `pages_repaired > 0`, and
//! with `--scrub` a background sweep (running concurrently with a session
//! run) plus a final full sweep must leave every replica verifying clean
//! from disk.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{PoolConfig, StorageScheme};
use hdov_storage::frozen::{read_layout, StoreLayout};
use hdov_storage::{verify_pool, ReplicaHealth, ScrubConfig, Scrubber, StorageBackend};
use hdov_walkthrough::{ServerConfig, ServerReport, Session, SessionKind, SessionServer};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parses `--flag <v>` / `--flag=<v>` out of the raw argument list.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix(&eq)
            .map(str::to_string)
            .or_else(|| (a == flag).then(|| args.get(i + 1).cloned()).flatten())
    })
}

/// Flips one byte in each of up to `n` distinct data pages, round-robin
/// across the primary (`<name>.hdov`, never `<name>.rK.hdov`) store files
/// under `dir`. Returns the number of pages actually corrupted.
fn corrupt_primary_pages(dir: &Path, n: usize) -> usize {
    let is_replica = |stem: &str| {
        stem.rsplit_once(".r")
            .is_some_and(|(_, k)| !k.is_empty() && k.bytes().all(|b| b.is_ascii_digit()))
    };
    let mut primaries: Vec<_> = std::fs::read_dir(dir)
        .expect("store directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hdov"))
        .filter(|p| !is_replica(p.file_stem().unwrap().to_str().unwrap()))
        .collect();
    primaries.sort();
    assert!(!primaries.is_empty(), "no stores under {}", dir.display());
    let pages: Vec<u64> = primaries
        .iter()
        .map(|p| {
            let f = std::fs::File::open(p).unwrap();
            read_layout(&f, p).unwrap().page_count
        })
        .collect();
    let mut hit = std::collections::BTreeSet::new();
    for i in 0..n.max(1) * primaries.len() {
        if hit.len() >= n {
            break;
        }
        let file = i % primaries.len();
        let page = (i / primaries.len()) as u64;
        if page >= pages[file] || !hit.insert((file, page)) {
            continue;
        }
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&primaries[file])
            .unwrap();
        let off = StoreLayout::page_offset(page) + 7;
        let mut b = [0u8; 1];
        f.read_exact_at(&mut b, off).unwrap();
        b[0] ^= 0x5a;
        f.write_all_at(&b, off).unwrap();
        f.sync_all().unwrap();
    }
    hit.len()
}

fn main() {
    let opts = RunOptions::from_args();
    let args: Vec<String> = std::env::args().collect();
    let corrupt_pages: usize = arg_value(&args, "--corrupt-pages")
        .map(|v| v.parse().expect("--corrupt-pages takes a page count"))
        .unwrap_or(0);
    let scrub = args.iter().any(|a| a == "--scrub");
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let n_sessions = if opts.quick { 8 } else { 16 };
    let frames = if opts.quick { 40 } else { 200 };

    let mut built = eval.environment(StorageScheme::IndexedVertical);
    opts.relocate("concurrent_sessions", &mut built);
    let env = built.into_shared(PoolConfig {
        replicas: opts.replicas,
        ..PoolConfig::default()
    });

    if corrupt_pages > 0 {
        assert!(
            opts.backend.is_file() && opts.replicas >= 2,
            "--corrupt-pages needs a replicated file backend \
             (e.g. --backend file:pread@2) so a healthy copy exists to heal from"
        );
        // The stores were verified page-by-page when they were opened above;
        // flipping bytes *now* means only failover + repair (or the
        // scrubber) can be the reason the answers stay intact.
        let dir = match opts.backend.storage("concurrent_sessions") {
            StorageBackend::File { dir, .. } => dir,
            StorageBackend::Mem => unreachable!("is_file checked above"),
        };
        let flipped = corrupt_primary_pages(&dir, corrupt_pages);
        println!(
            "corrupted {flipped} primary data pages under {}",
            dir.display()
        );
    }
    let sessions: Vec<Session> = (0..n_sessions)
        .map(|i| {
            Session::record(
                eval.scene.viewpoint_region(),
                SessionKind::all()[i % 3],
                frames,
                2003 + i as u64,
            )
        })
        .collect();
    let cfg = ServerConfig::default();

    let mut rows = Vec::new();
    let mut sim_qps_shared_1 = 0.0;
    let mut sim_qps_shared_4 = 0.0;
    let mut total_health = ReplicaHealth::default();
    let mut total_degraded = 0u64;
    for &threads in &[1usize, 2, 4, 8] {
        // Shared pool: fresh fork per run so every row starts cold.
        let run_env = env.fork_with_private_pools();
        let report = SessionServer::new(&run_env, cfg)
            .run(&sessions, threads)
            .expect("shared run");
        if threads == 1 {
            sim_qps_shared_1 = report.simulated_qps();
        }
        if threads == 4 {
            sim_qps_shared_4 = report.simulated_qps();
        }
        total_health.merge(&report.health);
        total_degraded += degraded(&report);
        let (hits, misses) = run_env.pool_hit_stats();
        rows.push(row("shared", threads, n_sessions, &report, hits, misses));

        // Per-session-pool baseline: each session runs against its own cold
        // fork, so nothing is shared between visitors. Threads still run
        // sessions concurrently (each on private pools) for a fair
        // wall-clock comparison.
        let forks: Vec<_> = sessions
            .iter()
            .map(|_| env.fork_with_private_pools())
            .collect();
        let start = std::time::Instant::now();
        let next = AtomicUsize::new(0);
        let outcomes: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let forks = &forks;
                    let sessions = &sessions;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= sessions.len() {
                                break done;
                            }
                            let r = SessionServer::new(&forks[i], cfg)
                                .run(std::slice::from_ref(&sessions[i]), 1)
                                .expect("private run");
                            done.extend(r.sessions.into_iter().map(|mut o| {
                                o.session = i;
                                o
                            }));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut outcomes = outcomes;
        // Completion order varies with scheduling; session order keeps the
        // simulated makespan deterministic.
        outcomes.sort_by_key(|o| o.session);
        let mut health = ReplicaHealth::default();
        for f in &forks {
            health.merge(&f.storage_health());
        }
        let report = ServerReport {
            sessions: outcomes,
            wall_seconds: start.elapsed().as_secs_f64(),
            threads: threads.min(n_sessions),
            backpressure: Default::default(),
            health,
        };
        total_health.merge(&report.health);
        total_degraded += degraded(&report);
        let (mut hits, mut misses) = (0u64, 0u64);
        for f in &forks {
            let (h, m) = f.pool_hit_stats();
            hits += h;
            misses += m;
        }
        rows.push(row("private", threads, n_sessions, &report, hits, misses));
    }

    print_table(
        "Concurrent sessions: shared pool vs per-session pools",
        &[
            "mode",
            "threads",
            "sessions",
            "wall qps",
            "sim qps",
            "p50 search (ms)",
            "p99 search (ms)",
            "pool hit rate",
            "pool lookups",
            "page reads",
        ],
        &rows,
    );
    println!(
        "simulated speedup (shared, 4 threads vs 1): {:.2}x",
        if sim_qps_shared_1 > 0.0 {
            sim_qps_shared_4 / sim_qps_shared_1
        } else {
            0.0
        }
    );
    println!(
        "expected shape: sim qps scales with threads; shared hit rate > private at every thread count"
    );
    write_csv(
        "concurrent_sessions",
        &[
            "mode",
            "threads",
            "sessions",
            "wall_qps",
            "sim_qps",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "pool_lookups",
            "page_reads",
        ],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "concurrent_sessions",
        2,
        &[
            "mode",
            "threads",
            "sessions",
            "wall_qps",
            "sim_qps",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "pool_lookups",
            "page_reads",
        ],
        &rows,
    );

    if scrub {
        // Background scrub racing a live session run: the sweep is throttled
        // by a pages/second wall-clock budget, the foreground queries keep
        // their own read path (a scrub read is never charged to a session).
        let run_env = env.fork_with_private_pools();
        let throttled = Scrubber::new(ScrubConfig {
            pages_per_second: Some(50_000.0),
            ..ScrubConfig::default()
        });
        let (live_report, bg) = std::thread::scope(|s| {
            let sweeper = s.spawn(|| run_env.scrub(&throttled));
            let r = SessionServer::new(&run_env, cfg)
                .run(&sessions, 4)
                .expect("run under background scrub");
            (
                r,
                sweeper.join().expect("scrub thread").expect("scrub sweep"),
            )
        });
        // Not `live_report.health`: that snapshot was taken when the session
        // run returned, and the sweeper may still have been repairing.
        total_health.merge(&run_env.storage_health());
        total_degraded += degraded(&live_report);
        println!(
            "background scrub (concurrent with a 4-thread run): \
             scanned={} corrupt_found={} repaired={} unrepairable={}",
            bg.pages_scanned,
            bg.corrupt_found,
            bg.repaired,
            bg.unrepairable.len()
        );
        // Final synchronous sweep: whatever the foreground repaired on
        // demand and the throttled pass caught, this must leave nothing.
        let last = env.scrub(&Scrubber::default()).expect("final scrub sweep");
        println!(
            "final scrub sweep: scanned={} corrupt_found={} repaired={} unrepairable={}",
            last.pages_scanned,
            last.corrupt_found,
            last.repaired,
            last.unrepairable.len()
        );
        total_health.merge(&env.storage_health());
        let mut bad = Vec::new();
        env.for_each_pool(|pool| bad.extend(verify_pool(pool).expect("re-verify from disk")));
        assert!(bad.is_empty(), "pages still corrupt after scrub: {bad:?}");
        println!("post-scrub verify: every replica of every store reads back clean");
    }

    println!(
        "health: failover_reads={} pages_repaired={} quarantined_pages={}",
        total_health.failover_reads, total_health.pages_repaired, total_health.quarantined_pages
    );
    println!("degraded frames: {total_degraded}");
    if corrupt_pages > 0 {
        // The self-healing contract this drill exists to enforce: loss of
        // one replica's pages is absorbed by failover and repaired in
        // place — it never reaches the picture as a coarser frame.
        assert_eq!(total_degraded, 0, "corruption leaked into degraded frames");
        assert!(total_health.failover_reads > 0, "no read ever failed over");
        assert!(
            total_health.pages_repaired > 0,
            "nothing was repaired in place"
        );
    }
}

/// Degraded-frame total of one report.
fn degraded(report: &ServerReport) -> u64 {
    report.sessions.iter().map(|o| o.degraded_frames).sum()
}

fn row(
    mode: &str,
    threads: usize,
    n_sessions: usize,
    report: &ServerReport,
    hits: u64,
    misses: u64,
) -> Vec<String> {
    vec![
        mode.to_string(),
        threads.to_string(),
        n_sessions.to_string(),
        format!("{:.0}", report.qps()),
        format!("{:.0}", report.simulated_qps()),
        format!("{:.3}", report.search_ms_quantile(0.5)),
        format!("{:.3}", report.search_ms_quantile(0.99)),
        format!("{:.4}", hits as f64 / (hits + misses).max(1) as f64),
        (hits + misses).to_string(),
        report.page_reads().to_string(),
    ]
}
