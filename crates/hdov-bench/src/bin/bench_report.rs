//! CI perf-regression gate: diffs two directories of metrics snapshots.
//!
//! ```text
//! bench_report --baseline results/metrics-baseline \
//!              [--current results/metrics] \
//!              [--tolerance-file ci/tolerances.toml]
//! ```
//!
//! Exits 0 when every tracked metric is within its tolerance of the
//! baseline, 1 when any metric regressed (or a tracked metric vanished),
//! and 2 on usage/IO errors. See `hdov_bench::report` for the comparison
//! semantics and DESIGN.md §9 for how tolerances are chosen.

use hdov_bench::report::{compare, load_snapshot_dir, ToleranceConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance_file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = PathBuf::from("results/metrics");
    let mut tolerance_file = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value"))
                .map(PathBuf::from)
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = value("--current")?,
            "--tolerance-file" => tolerance_file = Some(value("--tolerance-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: bench_report --baseline DIR [--current DIR] [--tolerance-file FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline DIR is required")?,
        current,
        tolerance_file,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let cfg = match &args.tolerance_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            ToleranceConfig::parse(&text)?
        }
        None => ToleranceConfig::default(),
    };
    let baseline = load_snapshot_dir(&args.baseline)?;
    let current = load_snapshot_dir(&args.current)?;
    if baseline.is_empty() {
        return Err(format!("no snapshots in {}", args.baseline.display()));
    }

    let out = compare(&baseline, &current, &cfg);
    println!(
        "bench_report: {} metrics compared, {} ignored, {} new",
        out.compared,
        out.ignored,
        out.new_in_current.len()
    );
    for id in &out.new_in_current {
        println!("  new (no baseline yet): {id}");
    }
    for id in &out.missing_in_current {
        println!("  FAIL missing in current run: {id}");
    }
    for r in &out.regressions {
        println!(
            "  FAIL {}: baseline {:.6} -> current {:.6} ({:+.2}% worse, tolerance {:.2}%)",
            r.metric,
            r.baseline,
            r.current,
            r.rel_change * 100.0,
            r.tolerance * 100.0
        );
    }
    if out.failed() {
        println!(
            "bench_report: GATE FAILED ({} regression(s), {} missing)",
            out.regressions.len(),
            out.missing_in_current.len()
        );
    } else {
        println!("bench_report: gate passed");
    }
    Ok(out.failed())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench_report: {msg}");
            ExitCode::from(2)
        }
    }
}
