//! Diagnostic: visibility sparsity of a city configuration — drives the
//! N_vnode / N_node regime that Table 2 and Fig. 7/8 depend on.

use hdov_bench::{EvalScene, RunOptions};
use hdov_core::{HdovBuildConfig, HdovTree};
use hdov_scene::CityConfig;

fn main() {
    let opts = RunOptions::from_args();
    for (label, mut city) in [
        ("default_paper", CityConfig::default_paper()),
        (
            "low towers",
            CityConfig {
                tower_fraction: 0.01,
                ..CityConfig::default_paper()
            },
        ),
        (
            "low towers, 16x16",
            CityConfig {
                tower_fraction: 0.01,
                blocks_x: 16,
                blocks_y: 16,
                ..CityConfig::default_paper()
            },
        ),
        (
            "no towers, 16x16",
            CityConfig {
                tower_fraction: 0.0,
                blocks_x: 16,
                blocks_y: 16,
                ..CityConfig::default_paper()
            },
        ),
    ] {
        city = city.seed(2003);
        let eval = EvalScene::from_city(city, &opts);
        let cfg = HdovBuildConfig {
            dov: eval.build_cfg.dov,
            ..Default::default()
        };
        let (tree, cells) = HdovTree::build_with_table(&eval.scene, &cfg, &eval.table).unwrap();
        let n_nodes = tree.node_count() as f64;
        let avg_vnodes = cells.iter().map(|c| c.len() as f64).sum::<f64>() / cells.len() as f64;
        println!(
            "{label:>20}: objects {:>5}, nodes {:>4}, avg N_vobj {:>6.1}, avg N_vnode {:>6.1} ({:.1}% of nodes)",
            eval.scene.len(),
            tree.node_count(),
            eval.table.avg_visible(),
            avg_vnodes,
            100.0 * avg_vnodes / n_nodes
        );
    }
}
