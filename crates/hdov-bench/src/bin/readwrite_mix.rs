//! **Read/write mix** — query latency under concurrent scene mutation.
//!
//! At `--write-fraction 0` (the default) this binary replays Figure 7's
//! read-only sweep verbatim — same scene, same viewpoints, same loops — so
//! its CSV must be *byte-identical* to `fig7_search_time.csv`, and the new
//! write-path counters (`wal_appends`, `commits`, `cow_pages`,
//! `dov_repatches`) must all be zero. CI diffs both; together they pin the
//! invariant that the write path costs nothing until it is used.
//!
//! At `--write-fraction f > 0`, a [`MutableScene`] serves the reads while a
//! writer interleaves edit transactions: per η, `f · N` of the `N` loop
//! iterations are commits (translate one object), the rest are shared-pool
//! visibility queries against the currently published epoch. Reported:
//! simulated read latency, wall-clock commit latency, and dirty-cell counts.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions, ETA_SWEEP};
use hdov_core::{search_shared, MutableScene, PoolConfig, SessionCtx, StorageScheme};
use hdov_geom::Vec3;
use hdov_scene::CityConfig;
use hdov_storage::PAGE_SIZE;
use hdov_visibility::CellGridConfig;

fn write_fraction() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let val = if let Some(v) = a.strip_prefix("--write-fraction=") {
            Some(v.to_string())
        } else if a == "--write-fraction" {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(v) = val {
            return v.parse().unwrap_or_else(|_| {
                eprintln!("bad --write-fraction {v:?}; expected a number in [0, 1]");
                std::process::exit(2);
            });
        }
    }
    0.0
}

fn main() {
    let opts = RunOptions::from_args();
    let wf = write_fraction().clamp(0.0, 1.0);
    if wf == 0.0 {
        read_only(&opts);
    } else {
        read_write(&opts, wf);
    }
}

/// Figure 7's loop, verbatim (see that binary for commentary). Keeping the
/// two in lockstep is the point: CI `cmp`s the CSVs.
fn read_only(opts: &RunOptions) {
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(opts);
    let viewpoints = eval.random_viewpoints(opts.query_count(), 7);
    println!(
        "{} visibility queries per point, {} objects, {} cells, backend {}, write fraction 0",
        viewpoints.len(),
        eval.scene.len(),
        eval.grid.cell_count(),
        opts.backend.label()
    );

    let mut envs: Vec<_> = StorageScheme::all()
        .into_iter()
        .map(|s| {
            let mut env = eval.environment(s);
            opts.relocate("readwrite_mix", &mut env);
            (s, env)
        })
        .collect();

    let mut rows = Vec::new();
    for eta in ETA_SWEEP {
        let mut row = vec![format!("{eta}")];
        for (_, env) in envs.iter_mut() {
            let t = mean(viewpoints.iter().map(|&vp| {
                let (_, st) = env.query_with_stats(vp, eta).unwrap();
                st.search_time_ms()
            }));
            row.push(format!("{t:.2}"));
        }
        let naive_env = &mut envs[2].1;
        let tn = mean(viewpoints.iter().map(|&vp| {
            let (_, st) = naive_env.query_naive(vp).unwrap();
            st.search_time_ms()
        }));
        row.push(format!("{tn:.2}"));
        rows.push(row);
    }
    print_table(
        "Read/write mix at write fraction 0: average search time (ms) vs eta",
        &["eta", "horizontal", "vertical", "indexed-vertical", "naive"],
        &rows,
    );
    println!("write fraction 0: rows must be byte-identical to fig7_search_time");
    write_csv(
        "readwrite_mix",
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "readwrite_mix",
        1,
        &[
            "eta",
            "horizontal_ms",
            "vertical_ms",
            "indexed_ms",
            "naive_ms",
        ],
        &rows,
    );
}

/// The mixed workload: reads against the published epoch, writes as
/// single-object translate commits.
fn read_write(opts: &RunOptions, wf: f64) {
    hdov_bench::start_metrics();
    let scene = if opts.quick {
        CityConfig::tiny().seed(2003).generate()
    } else {
        CityConfig::small().seed(2003).generate()
    };
    let grid_cfg = CellGridConfig {
        nx: 8,
        ny: 8,
        ..CellGridConfig::for_scene(&scene)
    };
    let mut cfg = hdov_core::HdovBuildConfig::default();
    cfg.dov.rays_per_viewpoint = 1024;
    cfg.dov.viewpoints_per_cell = 3;
    cfg.dov.seed = 2003;
    let dir = std::env::var_os("HDOV_STORE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/store"))
        .join("readwrite_mix");
    std::fs::remove_dir_all(&dir).ok();
    let mut ms = MutableScene::create(
        &dir,
        "mix",
        &scene,
        &grid_cfg,
        cfg,
        StorageScheme::IndexedVertical,
        PoolConfig::default(),
    )
    .expect("create mutable scene");
    println!(
        "{} objects, {} cells, write fraction {wf}",
        ms.len(),
        ms.grid().cell_count()
    );

    let ops = if opts.quick { 60 } else { 200 };
    let mut rng = hdov_geom::sampling::SplitMix64::new(7);
    let mut rows = Vec::new();
    for eta in ETA_SWEEP {
        let mut read_ms = Vec::new();
        let mut commit_ms = Vec::new();
        let mut wal_pages = 0u64;
        let env0 = ms.current();
        let cells = env0.grid().cell_count() as u32;
        let mut ctx = SessionCtx::new();
        for _ in 0..ops {
            if rng.next_f64() < wf {
                let handles = ms.handles();
                let h = handles[(rng.next_u64() % handles.len() as u64) as usize];
                let delta = Vec3::new(
                    (rng.next_f64() - 0.5) * 20.0,
                    (rng.next_f64() - 0.5) * 20.0,
                    0.0,
                );
                ms.translate(h, delta).expect("translate");
                let wal_before = ms.store().wal_len();
                let t0 = std::time::Instant::now();
                ms.commit().expect("commit");
                commit_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                wal_pages += (ms.store().wal_len() - wal_before) / PAGE_SIZE as u64;
                // A fresh epoch was published; follow it like a renderer
                // starting its next frame would.
                ctx = SessionCtx::new();
            } else {
                let env = ms.current();
                let cell = (rng.next_u64() % cells as u64) as u32;
                let (_, st) = search_shared(&env, &mut ctx, cell, eta, None, false).expect("query");
                read_ms.push(st.search_time_ms());
            }
        }
        rows.push(vec![
            format!("{eta}"),
            format!("{:.2}", mean(read_ms)),
            format!("{:.2}", mean(commit_ms)),
            format!("{wal_pages}"),
        ]);
    }
    print_table(
        &format!("Read/write mix at write fraction {wf}"),
        &["eta", "read_ms", "commit_wall_ms", "wal_pages"],
        &rows,
    );
    println!("reads stay on the published epoch; commits re-estimate only dirty cells");
    write_csv(
        "readwrite_mix_rw",
        &["eta", "read_ms", "commit_wall_ms", "wal_pages"],
        &rows,
    );
    hdov_bench::write_metrics_snapshot(
        "readwrite_mix_rw",
        1,
        &["eta", "read_ms", "commit_wall_ms", "wal_pages"],
        &rows,
    );
}
