//! **Table 3** — average frame time and frame-time variance of session 1 at
//! different η values, plus the REVIEW row, plus the memory comparison.
//!
//! Paper: frame time falls from 15.92 ms (η = 0) to 12.65 ms (η = 0.004),
//! variance from 6.34 to 4.15; REVIEW (400 m) needs 57.84 ms with variance
//! 16.46. Memory: VISUAL ≤ 28 MB vs REVIEW 62 MB.

use hdov_bench::{fmt_bytes, print_table, write_csv, EvalScene, RunOptions, TABLE3_ETAS};
use hdov_core::StorageScheme;
use hdov_review::{ReviewConfig, ReviewSystem};
use hdov_walkthrough::{
    run_session, FrameModel, ReviewWalkthrough, Session, SessionKind, VisualSystem,
    WalkthroughSystem,
};

const PAPER: [(f64, f64, f64); 9] = [
    (0.0, 15.92, 6.34),
    (0.00005, 15.91, 6.35),
    (0.0001, 16.06, 6.13),
    (0.0002, 15.58, 5.56),
    (0.0003, 15.47, 5.10),
    (0.0005, 13.94, 4.93),
    (0.001, 12.78, 4.35),
    (0.002, 12.79, 4.14),
    (0.004, 12.65, 4.15),
];

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let session = Session::record(
        eval.scene.viewpoint_region(),
        SessionKind::Normal, // session 1
        opts.session_frames(),
        3,
    );
    let fm = FrameModel::PAPER_ERA;

    let mut visual =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.0).expect("visual");
    let mut rows = Vec::new();
    let mut visual_peak = 0u64;
    for (i, &eta) in TABLE3_ETAS.iter().enumerate() {
        visual.set_eta(eta);
        let m = run_session(&mut visual, &session, &fm).unwrap();
        visual_peak = visual_peak.max(m.peak_memory_bytes);
        let (p_eta, p_avg, p_var) = PAPER[i];
        debug_assert_eq!(p_eta, eta);
        rows.push(vec![
            format!("{eta}"),
            format!("{:.2}", m.avg_frame_time_ms()),
            format!("{:.2}", m.variance_frame_time()),
            format!("{p_avg:.2}"),
            format!("{p_var:.2}"),
        ]);
    }

    let review_sys = ReviewSystem::build(
        &eval.scene,
        ReviewConfig {
            box_size: 400.0,
            ..Default::default()
        },
    )
    .expect("review");
    let mut review = ReviewWalkthrough::new(review_sys, eval.table.clone(), eval.grid.clone());
    let mr = run_session(&mut review, &session, &fm).unwrap();
    rows.push(vec![
        "REVIEW".into(),
        format!("{:.2}", mr.avg_frame_time_ms()),
        format!("{:.2}", mr.variance_frame_time()),
        "57.84".into(),
        "16.46".into(),
    ]);

    print_table(
        "Table 3: frame time of session 1 at different thresholds",
        &[
            "eta",
            "avg frame (ms)",
            "variance",
            "paper avg",
            "paper var",
        ],
        &rows,
    );
    println!(
        "memory: VISUAL peak {} vs REVIEW peak {} (paper: 28 MB vs 62 MB at full scale)",
        fmt_bytes(visual_peak),
        fmt_bytes(review.peak_memory_bytes())
    );
    write_csv(
        "table3_frametime",
        &["eta", "avg_ms", "variance", "paper_avg", "paper_var"],
        &rows,
    );
}
