//! **Figure 8** — disk I/Os of the visibility query vs η
//! (indexed-vertical scheme vs the naïve method).
//!
//! * 8(a): total page I/Os including the heavy-weight model data — HDoV
//!   always at or below naïve, falling with η.
//! * 8(b): light-weight I/Os (tree nodes + V-pages only) — HDoV *above*
//!   naïve at tiny η (it pays for internal nodes), converging toward it as
//!   η grows and subtrees terminate early. Under the packing-aware cost
//!   model (one-page read buffer, DESIGN.md §15) the naïve V-page pass is
//!   perfectly sequential and nearly free, so the paper's crossover point
//!   itself is not observable at our scale (EXPERIMENTS.md).

use hdov_bench::{answers_digest, mean, print_table, write_csv, EvalScene, RunOptions, ETA_SWEEP};
use hdov_core::StorageScheme;

fn main() {
    let opts = RunOptions::from_args();
    hdov_bench::start_metrics();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count(), 8);
    let mut env = eval.environment(StorageScheme::IndexedVertical);
    opts.relocate("fig8_io", &mut env);

    // Naïve reference (η-independent).
    let mut naive_digest = 0u64;
    let naive_total = mean(viewpoints.iter().map(|&vp| {
        let (r, st) = env.query_naive(vp).unwrap();
        naive_digest = naive_digest.rotate_left(1) ^ answers_digest(&r, &st);
        st.total_io().page_reads as f64
    }));
    let naive_light = mean(viewpoints.iter().map(|&vp| {
        let (_, st) = env.query_naive(vp).unwrap();
        st.light_io().page_reads as f64
    }));

    let mut rows = Vec::new();
    let mut wall_rows = Vec::new();
    let mut answer_rows = Vec::new();
    for eta in ETA_SWEEP {
        let (mut total, mut light) = (Vec::new(), Vec::new());
        let mut digest = 0u64;
        let t0 = std::time::Instant::now();
        for &vp in &viewpoints {
            let (r, st) = env.query_with_stats(vp, eta).unwrap();
            digest = digest.rotate_left(1) ^ answers_digest(&r, &st);
            total.push(st.total_io().page_reads as f64);
            light.push(st.light_io().page_reads as f64);
        }
        wall_rows.push(vec![
            format!("{eta}"),
            format!("{}", t0.elapsed().as_nanos()),
        ]);
        answer_rows.push(vec![
            format!("{eta}"),
            format!("{digest:016x}"),
            format!("{naive_digest:016x}"),
        ]);
        rows.push(vec![
            format!("{eta}"),
            format!("{:.1}", mean(total)),
            format!("{naive_total:.1}"),
            format!("{:.2}", mean(light)),
            format!("{naive_light:.2}"),
        ]);
    }
    print_table(
        "Figure 8: page I/Os per query vs eta (indexed-vertical vs naive)",
        &[
            "eta",
            "8a total (HDoV)",
            "8a total (naive)",
            "8b light (HDoV)",
            "8b light (naive)",
        ],
        &rows,
    );
    println!("paper shape: 8a falls with eta, crossing below naive; 8b falls toward flat naive");
    write_csv(
        "fig8_io",
        &[
            "eta",
            "hdov_total",
            "naive_total",
            "hdov_light",
            "naive_light",
        ],
        &rows,
    );
    // Codec-invariant answer digests (see fig7): compared byte-for-byte
    // between `--codec raw` and `--codec delta` by the CI equivalence job.
    write_csv("fig8_answers", &["eta", "hdov", "naive"], &answer_rows);
    hdov_bench::write_metrics_snapshot(
        "fig8_io",
        1,
        &[
            "eta",
            "hdov_total",
            "naive_total",
            "hdov_light",
            "naive_light",
        ],
        &rows,
    );
    // Wall-clock I/O of the file-backed run (never gated; see fig7).
    if opts.backend.is_file() {
        hdov_bench::write_metrics_snapshot("fig8_io_wall", 1, &["eta", "hdov.wall_ns"], &wall_rows);
    }
}
