//! **Crash-recovery torture** — the CI gate behind DESIGN.md §14's
//! durability claim: *a crash at any byte boundary recovers to exactly the
//! last committed transaction*.
//!
//! The harness runs a seeded workload of edit commits against a
//! [`MutableScene`], recording the oracle per epoch — the never-crashed
//! store's page images and the published environment's full answer set.
//! Then, for the final WAL, it simulates a crash at **every** record
//! boundary, mid-record (torn tail), and with a bit flipped inside each
//! record, reopens the store copy, and asserts
//!
//! * the recovered epoch is exactly the last commit whose marker survives
//!   intact in the damaged prefix,
//! * every recovered page file is byte-identical to the oracle's at that
//!   epoch, and
//! * (once per distinct recovered epoch) a fully reopened scene answers
//!   every visibility query byte-identically to the never-crashed oracle.
//!
//! Any mismatch aborts with a nonzero exit, failing the `crash-recovery`
//! CI job.

use hdov_bench::{print_table, write_csv};
use hdov_core::{
    search_shared, HdovBuildConfig, MutableScene, PoolConfig, SessionCtx, SharedEnvironment,
    StorageScheme, SCENE_FILES,
};
use hdov_geom::Vec3;
use hdov_scene::CityConfig;
use hdov_visibility::{CellGridConfig, CellId};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const STORE: &str = "torture";
const COMMITS: usize = 4;

type Answers = Vec<Vec<(hdov_core::ResultKey, usize)>>;

fn answers(env: &SharedEnvironment) -> Answers {
    let mut out = Vec::new();
    for cell in 0..env.grid().cell_count() as CellId {
        let mut ctx = SessionCtx::new();
        let (res, _) = search_shared(env, &mut ctx, cell, 0.0, None, false).unwrap();
        let mut entries: Vec<_> = res.entries().iter().map(|e| (e.key, e.level)).collect();
        entries.sort();
        out.push(entries);
    }
    out
}

/// Materializes every page file of a store at its current epoch.
fn images(store: &hdov_storage::MutableStore) -> Vec<Vec<Box<[u8]>>> {
    let snap = store.snapshot();
    (0..SCENE_FILES.len() as u32)
        .map(|fid| snap.materialize(fid).expect("materialize oracle file"))
        .collect()
}

/// One recorded oracle epoch.
struct Oracle {
    images: Vec<Vec<Box<[u8]>>>,
    answers: Answers,
}

/// Copies the base stores plus a damaged WAL into `scratch`.
fn stage_crash(oracle_dir: &Path, scratch: &Path, wal: &[u8]) {
    std::fs::remove_dir_all(scratch).ok();
    std::fs::create_dir_all(scratch).unwrap();
    for f in SCENE_FILES {
        let name = format!("{STORE}.{f}.hdov");
        std::fs::copy(oracle_dir.join(&name), scratch.join(&name)).expect("copy base store");
    }
    std::fs::write(scratch.join(format!("{STORE}.wal")), wal).expect("write damaged WAL");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    let base = std::env::var_os("HDOV_STORE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/store"))
        .join("crash_torture");
    let oracle_dir = base.join("oracle");
    let scratch = base.join("scratch");
    std::fs::remove_dir_all(&base).ok();

    // ---- The never-crashed oracle -------------------------------------
    let scene = CityConfig::tiny().seed(2003).generate();
    let grid_cfg = CellGridConfig {
        nx: 4,
        ny: 4,
        ..CellGridConfig::for_scene(&scene)
    };
    let cfg = HdovBuildConfig::fast_test();
    let scheme = StorageScheme::IndexedVertical;
    let mut ms = MutableScene::create(
        &oracle_dir,
        STORE,
        &scene,
        &grid_cfg,
        cfg.clone(),
        scheme,
        PoolConfig::default(),
    )
    .expect("create oracle scene");

    let mut oracles = vec![Oracle {
        images: images(ms.store()),
        answers: answers(&ms.current()),
    }];
    // Byte offset in the WAL at which each epoch's last record ends.
    let mut durable_end = vec![ms.store().wal_len()];

    let mut rng = hdov_geom::sampling::SplitMix64::new(42);
    let handles0 = ms.handles();
    for k in 0..COMMITS {
        // A mixed transaction: one translate, plus an insert or a remove.
        let h = handles0[(rng.next_u64() % handles0.len() as u64) as usize];
        if ms.object(h).is_some() {
            let delta = Vec3::new(
                (rng.next_f64() - 0.5) * 30.0,
                (rng.next_f64() - 0.5) * 30.0,
                0.0,
            );
            ms.translate(h, delta).unwrap();
        }
        if k % 2 == 0 {
            let src = ms.object(ms.handles()[0]).unwrap();
            let shift = Vec3::new(rng.next_f64() * 25.0, rng.next_f64() * 25.0, 0.0);
            ms.insert(
                src.kind,
                src.prototype,
                hdov_geom::Aabb {
                    min: src.mbr.min + shift,
                    max: src.mbr.max + shift,
                },
            )
            .unwrap();
        } else {
            let hs = ms.handles();
            ms.remove(hs[hs.len() - 1]).unwrap();
        }
        let epoch = ms.commit().expect("oracle commit");
        assert_eq!(epoch as usize, k + 1);
        oracles.push(Oracle {
            images: images(ms.store()),
            answers: answers(&ms.current()),
        });
        durable_end.push(ms.store().wal_len());
    }
    let wal_path = ms.store().wal_path_of();
    let prototypes = scene.prototypes().clone();
    drop(ms);

    let wal = std::fs::read(&wal_path).expect("read oracle WAL");
    let bounds = hdov_storage::wal::record_boundaries(&wal_path).expect("scan WAL");
    println!(
        "oracle: {COMMITS} commits, WAL {} bytes, {} records",
        wal.len(),
        bounds.len() - 1
    );

    // The epoch a damaged WAL must recover to, given that bytes < `v` are
    // intact: the last commit whose records all landed before the damage.
    let expected_epoch =
        |v: u64| -> u64 { (durable_end.iter().filter(|&&e| e <= v).count() - 1) as u64 };

    // ---- Crash scenarios ----------------------------------------------
    let mut cuts: Vec<(u64, Vec<u8>)> = Vec::new(); // (intact prefix, damaged WAL)
    for (i, &b) in bounds.iter().enumerate() {
        // Clean truncation at every record boundary.
        cuts.push((b, wal[..b as usize].to_vec()));
        if let Some(&next) = bounds.get(i + 1) {
            // Torn tails inside the record: one byte in, and mid-record.
            let offsets: &[u64] = if quick {
                &[(next - b) / 2]
            } else {
                &[1, (next - b) / 2, next - b - 1]
            };
            for &off in offsets {
                if off > 0 && b + off < next {
                    cuts.push((b, wal[..(b + off) as usize].to_vec()));
                }
            }
            // A bit flip inside the record invalidates its checksum: the
            // prefix before the record stays trusted, nothing after is.
            let flip_at = b + (next - b) / 3;
            let mut flipped = wal.clone();
            flipped[flip_at as usize] ^= 0x40;
            cuts.push((b, flipped));
        }
    }

    let mut answer_checked: BTreeSet<u64> = BTreeSet::new();
    let mut per_epoch = vec![0u64; oracles.len()];
    for (intact, damaged) in &cuts {
        let expect = expected_epoch(*intact);
        stage_crash(&oracle_dir, &scratch, damaged);

        let store = hdov_storage::MutableStore::open(&scratch, STORE, &SCENE_FILES)
            .expect("recovery must not error on torn tails");
        assert_eq!(
            store.epoch(),
            expect,
            "recovered wrong epoch for prefix {intact} ({} byte WAL)",
            damaged.len()
        );
        let got = images(&store);
        assert_eq!(
            got, oracles[expect as usize].images,
            "recovered pages differ from the never-crashed oracle at epoch {expect}"
        );
        drop(store);

        // Full-stack check once per distinct recovered epoch: reopen the
        // scene and compare every cell's answer set.
        if answer_checked.insert(expect) {
            let reopened = MutableScene::open(
                &scratch,
                STORE,
                prototypes.clone(),
                cfg.clone(),
                scheme,
                PoolConfig::default(),
            )
            .expect("reopen recovered scene");
            assert_eq!(reopened.epoch(), expect);
            assert_eq!(
                answers(&reopened.current()),
                oracles[expect as usize].answers,
                "recovered answers differ from the never-crashed oracle at epoch {expect}"
            );
        }
        per_epoch[expect as usize] += 1;
    }
    assert_eq!(
        answer_checked.len(),
        oracles.len(),
        "sweep must exercise recovery into every epoch"
    );

    let rows: Vec<Vec<String>> = per_epoch
        .iter()
        .enumerate()
        .map(|(e, n)| vec![format!("{e}"), format!("{n}"), format!("yes")])
        .collect();
    print_table(
        &format!(
            "Crash torture: {} scenarios over {} WAL records, all recovered exactly",
            cuts.len(),
            bounds.len() - 1
        ),
        &["epoch", "scenarios", "answers_checked"],
        &rows,
    );
    write_csv(
        "crash_torture",
        &["epoch", "scenarios", "answers_checked"],
        &rows,
    );
    println!(
        "CRASH TORTURE OK: {} scenarios, every recovery byte-identical",
        cuts.len()
    );
    std::fs::remove_dir_all(&base).ok();
}
