//! **Ablation** — R-tree backbone construction: the paper's Ang–Tan linear
//! split vs Guttman's quadratic split vs STR bulk loading.
//!
//! The paper chose the Ang–Tan split "to minimize the overlap of the
//! bounding boxes" (§5.1). This ablation quantifies what the backbone buys:
//! node count, tree height, and the light-weight I/O of HDoV queries over
//! the same scene and DoV data.

use hdov_bench::{mean, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{HdovBuildConfig, HdovEnvironment, StorageScheme};
use hdov_rtree::SplitMethod;

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count() / 4, 31);

    let variants: [(&str, SplitMethod, bool); 3] = [
        ("Ang-Tan linear (paper)", SplitMethod::AngTanLinear, false),
        ("Guttman quadratic", SplitMethod::GuttmanQuadratic, false),
        ("STR bulk load", SplitMethod::AngTanLinear, true),
    ];

    let mut rows = Vec::new();
    for (label, split, bulk) in variants {
        let cfg = HdovBuildConfig {
            split,
            bulk_load: bulk,
            ..eval.build_cfg.clone()
        };
        let build_start = std::time::Instant::now();
        let mut env = HdovEnvironment::build_with_table(
            &eval.scene,
            eval.grid.clone(),
            cfg,
            StorageScheme::IndexedVertical,
            eval.table.clone(),
        )
        .expect("build");
        let build_s = build_start.elapsed().as_secs_f64();

        let light = mean(viewpoints.iter().map(|&vp| {
            let (_, st) = env.query_with_stats(vp, 0.001).unwrap();
            st.light_io().page_reads as f64
        }));
        let time = mean(viewpoints.iter().map(|&vp| {
            let (_, st) = env.query_with_stats(vp, 0.001).unwrap();
            st.search_time_ms()
        }));
        rows.push(vec![
            label.to_string(),
            env.tree().node_count().to_string(),
            env.tree().height().to_string(),
            format!("{build_s:.2}"),
            format!("{light:.1}"),
            format!("{time:.2}"),
        ]);
    }
    print_table(
        "Ablation: backbone construction method",
        &[
            "backbone",
            "nodes",
            "height",
            "build wall (s)",
            "light I/Os/query",
            "search (ms)",
        ],
        &rows,
    );
    write_csv(
        "ablation_split",
        &[
            "backbone",
            "nodes",
            "height",
            "build_s",
            "light_ios",
            "search_ms",
        ],
        &rows,
    );
}
