//! **Ablation** — frame-budgeted streaming: sweep the per-frame loading
//! budget of [`StreamingVisualSystem`] and measure the smoothness/fidelity
//! trade-off against unbounded VISUAL.
//!
//! This quantifies the paper's §3.2 "third advantage" (prioritized
//! traversal "can further improve the response time significantly"): a
//! budget clips the p95/max frame time while prioritized ordering keeps the
//! coverage loss small and transient.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_walkthrough::{
    run_session, FrameModel, Session, SessionKind, StreamingVisualSystem, VisualSystem,
};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let session = Session::record(
        eval.scene.viewpoint_region(),
        SessionKind::Normal,
        opts.session_frames(),
        50,
    );
    let fm = FrameModel::PAPER_ERA;
    let eta = 0.001;

    // Reference: unbounded VISUAL.
    let mut unbounded =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), eta).expect("visual");
    let mu = run_session(&mut unbounded, &session, &fm).unwrap();

    let mut rows = vec![vec![
        "unbounded".to_string(),
        format!("{:.1}", mu.avg_frame_time_ms()),
        format!("{:.1}", mu.frame_time_percentile(95.0)),
        format!("{:.1}", mu.max_frame_time_ms()),
        format!("{:.4}", mu.avg_dov_coverage()),
        format!("{:.4}", mu.min_dov_coverage()),
        "0".to_string(),
    ]];

    for fraction in [2.0, 1.0, 0.5, 0.25] {
        let budget = mu.avg_search_time_ms() * fraction;
        let mut sys = StreamingVisualSystem::new(
            eval.environment(StorageScheme::IndexedVertical),
            eta,
            budget,
        )
        .expect("streaming");
        let m = run_session(&mut sys, &session, &fm).unwrap();
        rows.push(vec![
            format!("{budget:.0} ms/frame"),
            format!("{:.1}", m.avg_frame_time_ms()),
            format!("{:.1}", m.frame_time_percentile(95.0)),
            format!("{:.1}", m.max_frame_time_ms()),
            format!("{:.4}", m.avg_dov_coverage()),
            format!("{:.4}", m.min_dov_coverage()),
            sys.truncated_frames().to_string(),
        ]);
    }
    print_table(
        &format!(
            "Ablation: streaming frame budgets over {} frames (eta = {eta})",
            session.len()
        ),
        &[
            "loading budget",
            "avg frame (ms)",
            "p95 (ms)",
            "max (ms)",
            "avg coverage",
            "worst coverage",
            "truncated",
        ],
        &rows,
    );
    println!(
        "expected: smaller budgets clip p95/max frame times; coverage dips \
         transiently (worst frame) but the session average stays high because \
         prioritized loading front-loads the visible mass"
    );
    write_csv(
        "ablation_streaming",
        &[
            "budget",
            "avg_ms",
            "p95_ms",
            "max_ms",
            "avg_cov",
            "min_cov",
            "truncated",
        ],
        &rows,
    );
}
