//! **Figure 10** — per-frame time series during an interactive walkthrough.
//!
//! * 10(a): VISUAL (η = 0.001) vs REVIEW (400 m query boxes) — REVIEW is
//!   slower and "choppier" (tall spikes at spatial queries).
//! * 10(b): VISUAL at η = 0.001 vs η = 0.0003 — the larger threshold is up
//!   to ~20 % faster.

use hdov_bench::{print_table, write_csv, EvalScene, RunOptions};
use hdov_core::StorageScheme;
use hdov_review::{ReviewConfig, ReviewSystem};
use hdov_walkthrough::{
    run_session, FrameModel, ReviewWalkthrough, Session, SessionKind, VisualSystem,
    WalkthroughMetrics,
};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let session = Session::record(
        eval.scene.viewpoint_region(),
        SessionKind::Normal,
        opts.session_frames(),
        1,
    );
    let fm = FrameModel::PAPER_ERA;

    let mut visual_1 =
        VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.001).expect("visual");
    let mut visual_03 = VisualSystem::new(eval.environment(StorageScheme::IndexedVertical), 0.0003)
        .expect("visual");
    let review_sys = ReviewSystem::build(
        &eval.scene,
        ReviewConfig {
            box_size: 400.0,
            ..Default::default()
        },
    )
    .expect("review");
    let mut review = ReviewWalkthrough::new(review_sys, eval.table.clone(), eval.grid.clone());

    let mv1 = run_session(&mut visual_1, &session, &fm).unwrap();
    let mv03 = run_session(&mut visual_03, &session, &fm).unwrap();
    let mr = run_session(&mut review, &session, &fm).unwrap();

    // Fig. 10(a) and 10(b) series: frame index vs frame time.
    let mut series = Vec::with_capacity(session.len());
    for i in 0..session.len() {
        series.push(vec![
            i.to_string(),
            format!("{:.3}", mv1.frames[i].frame_ms),
            format!("{:.3}", mr.frames[i].frame_ms),
            format!("{:.3}", mv03.frames[i].frame_ms),
        ]);
    }
    write_csv(
        "fig10_frametime",
        &[
            "frame",
            "visual_eta0.001_ms",
            "review_400m_ms",
            "visual_eta0.0003_ms",
        ],
        &series,
    );

    let summary = |m: &WalkthroughMetrics| {
        vec![
            m.system.clone(),
            format!("{:.2}", m.avg_frame_time_ms()),
            format!("{:.2}", m.max_frame_time_ms()),
            format!("{:.2}", m.variance_frame_time()),
        ]
    };
    print_table(
        "Figure 10: walkthrough frame times (series in results/fig10_frametime.csv)",
        &["system", "avg frame (ms)", "max spike (ms)", "variance"],
        &[summary(&mv1), summary(&mr), summary(&mv03)],
    );
    println!(
        "10a shape: REVIEW slower & choppier than VISUAL(0.001) -> avg {:.2} vs {:.2}, spikes {:.2} vs {:.2}",
        mr.avg_frame_time_ms(),
        mv1.avg_frame_time_ms(),
        mr.max_frame_time_ms(),
        mv1.max_frame_time_ms()
    );
    println!(
        "10b shape: eta=0.001 faster than eta=0.0003 by {:.1}% (paper: up to ~20%)",
        100.0 * (mv03.avg_frame_time_ms() - mv1.avg_frame_time_ms()) / mv03.avg_frame_time_ms()
    );
}
