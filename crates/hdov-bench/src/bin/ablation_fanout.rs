//! **Ablation** — tree fan-out `M`: depth vs node size.
//!
//! `M` controls everything downstream: tree height, node count (hence the
//! storage formulas of §4), V-page record size, and how often the Eq. 4
//! guard fires. The paper fixes one R-tree page layout; this ablation sweeps
//! `M` over the same scene.

use hdov_bench::{fmt_bytes, mean, print_table, write_csv, EvalScene, RunOptions};
use hdov_core::{HdovBuildConfig, HdovEnvironment, StorageScheme};

fn main() {
    let opts = RunOptions::from_args();
    let eval = EvalScene::standard(&opts);
    let viewpoints = eval.random_viewpoints(opts.query_count() / 4, 34);
    let eta = 0.001;

    let mut rows = Vec::new();
    for fanout in [4usize, 8, 16, 32] {
        let cfg = HdovBuildConfig {
            fanout,
            ..eval.build_cfg.clone()
        };
        let mut env = HdovEnvironment::build_with_table(
            &eval.scene,
            eval.grid.clone(),
            cfg,
            StorageScheme::IndexedVertical,
            eval.table.clone(),
        )
        .expect("build");
        let (mut time, mut light) = (Vec::new(), Vec::new());
        for &vp in &viewpoints {
            let (_, st) = env.query_with_stats(vp, eta).unwrap();
            time.push(st.search_time_ms());
            light.push(st.light_io().page_reads as f64);
        }
        rows.push(vec![
            fanout.to_string(),
            env.tree().node_count().to_string(),
            env.tree().height().to_string(),
            fmt_bytes(env.vstore().storage_bytes()),
            format!("{:.1}", mean(light)),
            format!("{:.2}", mean(time)),
        ]);
    }
    print_table(
        &format!("Ablation: fan-out M (indexed-vertical, eta = {eta})"),
        &[
            "M",
            "nodes",
            "height",
            "V-store size",
            "light I/Os/query",
            "search (ms)",
        ],
        &rows,
    );
    write_csv(
        "ablation_fanout",
        &[
            "fanout",
            "nodes",
            "height",
            "vstore_bytes",
            "light_ios",
            "search_ms",
        ],
        &rows,
    );
}
