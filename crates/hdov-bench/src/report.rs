//! The perf-regression diff engine behind the `bench_report` binary.
//!
//! Two directories of [`MetricsSnapshot`] JSON files (a checked-in baseline
//! and a fresh run) are flattened to `snapshot/metric → f64` maps and
//! compared metric-by-metric under a per-metric relative tolerance loaded
//! from `ci/tolerances.toml`. A tracked metric that moves in its *worse*
//! direction by more than its tolerance is a regression; `bench_report`
//! exits nonzero when any exist, which is what turns the metrics files into
//! a CI gate instead of a CSV a human has to eyeball.
//!
//! ## Tolerance file
//!
//! A deliberately tiny TOML subset (the container has no TOML crate):
//! top-level `default_tolerance = <float>`, then three sections whose
//! entries are `"pattern" = <float>` (`[tolerances]`) or
//! `patterns = ["...", ...]` (`[ignore]`, `[higher_is_better]`):
//!
//! ```toml
//! default_tolerance = 0.05
//!
//! [ignore]            # reported but never gated (wall-clock noise)
//! patterns = ["hist.wall_", "*wall_ns"]
//!
//! [higher_is_better]  # regressions point down, not up
//! patterns = ["*hit_rate", "*sim_qps"]
//!
//! [tolerances]        # per-metric overrides, longest match wins
//! "fig8_io/" = 0.0
//! ```
//!
//! A pattern starting with `*` is a suffix match; anything else is a prefix
//! match against the full `snapshot/metric` id *or* the bare metric part.

use hdov_obs::MetricsSnapshot;
use std::collections::BTreeMap;
use std::path::Path;

/// How a pattern from the tolerance file matches a metric id.
fn matches(pattern: &str, id: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix('*') {
        id.ends_with(suffix)
    } else {
        id.starts_with(pattern)
            || id
                .split_once('/')
                .is_some_and(|(_, metric)| metric.starts_with(pattern))
    }
}

/// Parsed `ci/tolerances.toml`.
#[derive(Debug, Clone)]
pub struct ToleranceConfig {
    /// Relative tolerance when no override matches.
    pub default_tolerance: f64,
    /// Metrics matching any of these are reported but never gated.
    pub ignore: Vec<String>,
    /// Metrics matching any of these regress *downward* (rates, throughput).
    pub higher_is_better: Vec<String>,
    /// Per-metric overrides; the longest matching pattern wins.
    pub overrides: Vec<(String, f64)>,
}

impl Default for ToleranceConfig {
    fn default() -> Self {
        ToleranceConfig {
            default_tolerance: 0.05,
            ignore: vec!["hist.wall_".into(), "*wall_ns".into(), "*wall_qps".into()],
            higher_is_better: vec!["*hit_rate".into(), "*sim_qps".into(), "*pool_hits".into()],
            overrides: Vec::new(),
        }
    }
}

impl ToleranceConfig {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<ToleranceConfig, String> {
        let mut cfg = ToleranceConfig {
            default_tolerance: 0.05,
            ignore: Vec::new(),
            higher_is_better: Vec::new(),
            overrides: Vec::new(),
        };
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let fail = |msg: &str| format!("tolerances line {}: {msg}", lineno + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| fail("expected key = value"))?;
            let key = key.trim_matches('"').to_string();
            match section.as_str() {
                "" => {
                    if key == "default_tolerance" {
                        cfg.default_tolerance = value
                            .parse()
                            .map_err(|_| fail("default_tolerance must be a number"))?;
                    } else {
                        return Err(fail(&format!("unknown top-level key {key}")));
                    }
                }
                "ignore" | "higher_is_better" => {
                    if key != "patterns" {
                        return Err(fail("expected patterns = [\"...\"]"));
                    }
                    let list = parse_string_array(value).ok_or_else(|| fail("bad array"))?;
                    if section == "ignore" {
                        cfg.ignore.extend(list);
                    } else {
                        cfg.higher_is_better.extend(list);
                    }
                }
                "tolerances" => {
                    let tol: f64 = value
                        .parse()
                        .map_err(|_| fail("tolerance must be a number"))?;
                    if tol < 0.0 {
                        return Err(fail("tolerance must be non-negative"));
                    }
                    cfg.overrides.push((key, tol));
                }
                other => return Err(fail(&format!("unknown section [{other}]"))),
            }
        }
        Ok(cfg)
    }

    /// The gating tolerance for `id`, or `None` when the metric is ignored.
    pub fn tolerance_for(&self, id: &str) -> Option<f64> {
        if self.ignore.iter().any(|p| matches(p, id)) {
            return None;
        }
        self.overrides
            .iter()
            .filter(|(p, _)| matches(p, id))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, t)| t)
            .or(Some(self.default_tolerance))
    }

    /// Whether a *drop* in `id` is the regression direction.
    pub fn is_higher_better(&self, id: &str) -> bool {
        self.higher_is_better.iter().any(|p| matches(p, id))
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| {
            let item = item.trim();
            item.strip_prefix('"')?
                .strip_suffix('"')
                .map(|s| s.to_string())
        })
        .collect()
}

/// Flattens one snapshot into `metric → value` (no snapshot-name prefix).
///
/// Counters become `counter.<name>`, gauges `gauge.<name>`, histograms
/// `hist.<name>.{count,sum,mean,p50,p99,max}`.
pub fn flatten(snap: &MetricsSnapshot) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (k, &v) in &snap.counters {
        out.insert(format!("counter.{k}"), v as f64);
    }
    for (k, &v) in &snap.gauges {
        out.insert(format!("gauge.{k}"), v);
    }
    for (k, h) in &snap.histograms {
        out.insert(format!("hist.{k}.count"), h.count as f64);
        out.insert(format!("hist.{k}.sum"), h.sum as f64);
        out.insert(format!("hist.{k}.mean"), h.mean());
        out.insert(format!("hist.{k}.p50"), h.quantile(0.5) as f64);
        out.insert(format!("hist.{k}.p99"), h.quantile(0.99) as f64);
        out.insert(format!("hist.{k}.max"), h.max as f64);
    }
    out
}

/// One gated metric that moved beyond its tolerance in the worse direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Full `snapshot/metric` id.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change, positive = worse.
    pub rel_change: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
}

/// Everything `bench_report` learned from one comparison.
#[derive(Debug, Clone, Default)]
pub struct ReportOutcome {
    /// Metrics compared under a tolerance.
    pub compared: usize,
    /// Metrics present but ignored by configuration.
    pub ignored: usize,
    /// Gated regressions (nonzero exit when non-empty).
    pub regressions: Vec<Regression>,
    /// Tracked metrics the current run no longer produces (also gate
    /// failures: a vanished metric must be a deliberate baseline update).
    pub missing_in_current: Vec<String>,
    /// New metrics with no baseline yet (informational only).
    pub new_in_current: Vec<String>,
}

impl ReportOutcome {
    /// Whether the gate should fail.
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing_in_current.is_empty()
    }
}

/// Compares `current` against `baseline` under `cfg`.
///
/// Snapshots pair by name; metric ids are `name/flattened-key`. The signed
/// relative change is `(cur - base) / |base|` (flipped for higher-is-better
/// metrics); a zero baseline compares exactly.
pub fn compare(
    baseline: &[MetricsSnapshot],
    current: &[MetricsSnapshot],
    cfg: &ToleranceConfig,
) -> ReportOutcome {
    let mut base_metrics = BTreeMap::new();
    for snap in baseline {
        for (k, v) in flatten(snap) {
            base_metrics.insert(format!("{}/{}", snap.name, k), v);
        }
    }
    let mut cur_metrics = BTreeMap::new();
    for snap in current {
        for (k, v) in flatten(snap) {
            cur_metrics.insert(format!("{}/{}", snap.name, k), v);
        }
    }

    let mut out = ReportOutcome::default();
    for (id, &base) in &base_metrics {
        let Some(&cur) = cur_metrics.get(id) else {
            if cfg.tolerance_for(id).is_some() {
                out.missing_in_current.push(id.clone());
            }
            continue;
        };
        let Some(tolerance) = cfg.tolerance_for(id) else {
            out.ignored += 1;
            continue;
        };
        out.compared += 1;
        let signed = if base == 0.0 {
            if cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base.abs()
        };
        let rel_change = if cfg.is_higher_better(id) {
            -signed
        } else {
            signed
        };
        if rel_change > tolerance {
            out.regressions.push(Regression {
                metric: id.clone(),
                baseline: base,
                current: cur,
                rel_change,
                tolerance,
            });
        }
    }
    for id in cur_metrics.keys() {
        if !base_metrics.contains_key(id) {
            out.new_in_current.push(id.clone());
        }
    }
    out
}

/// Loads one metrics snapshot JSON file.
///
/// A missing file is a *usage* error (`bench_report` exits 2), not a gate
/// failure: the caller pointed at something that was never produced, and
/// the message says how to produce it.
pub fn load_snapshot_file(path: &Path) -> Result<MetricsSnapshot, String> {
    if !path.is_file() {
        return Err(format!(
            "metrics file {} does not exist — run the bench bin that writes it \
             (they write results/metrics/<name>.json), or fix the path",
            path.display()
        ));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    MetricsSnapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads every `*.json` snapshot in `dir`, sorted by file name.
///
/// A missing directory is a usage error with the same contract as
/// [`load_snapshot_file`]: exit 2, with a hint at what should have created
/// the directory.
pub fn load_snapshot_dir(dir: &Path) -> Result<Vec<MetricsSnapshot>, String> {
    if !dir.is_dir() {
        return Err(format!(
            "snapshot directory {} does not exist — pass --baseline/--current a directory \
             of *.json metrics snapshots (CI keeps the baseline in results/metrics-baseline)",
            dir.display()
        ));
    }
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut snaps = Vec::with_capacity(paths.len());
    for path in paths {
        snaps.push(load_snapshot_file(&path)?);
    }
    Ok(snaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, pairs: &[(&str, f64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new(name);
        for &(k, v) in pairs {
            s.set_gauge(k, v);
        }
        s
    }

    #[test]
    fn tolerance_file_parses_and_matches() {
        let cfg = ToleranceConfig::parse(
            r#"
            # comment
            default_tolerance = 0.10

            [ignore]
            patterns = ["hist.wall_", "*wall_ns"]  # noise

            [higher_is_better]
            patterns = ["*hit_rate"]

            [tolerances]
            "fig8_io/" = 0.0
            "fig8_io/gauge.eta0.008" = 0.5
            "#,
        )
        .unwrap();
        assert_eq!(cfg.default_tolerance, 0.10);
        assert_eq!(cfg.tolerance_for("x/counter.phase.traversal.wall_ns"), None);
        assert_eq!(cfg.tolerance_for("x/hist.wall_search_ns.count"), None);
        assert_eq!(
            cfg.tolerance_for("fig8_io/gauge.eta0.hdov_total"),
            Some(0.0)
        );
        // Longest match wins.
        assert_eq!(cfg.tolerance_for("fig8_io/gauge.eta0.008.x"), Some(0.5));
        assert_eq!(cfg.tolerance_for("other/gauge.y"), Some(0.10));
        assert!(cfg.is_higher_better("a/gauge.pool.hit_rate"));
        assert!(!cfg.is_higher_better("a/gauge.search_ms"));

        assert!(ToleranceConfig::parse("nonsense").is_err());
        assert!(ToleranceConfig::parse("[tolerances]\n\"x\" = -1").is_err());
        assert!(ToleranceConfig::parse("[bogus]\nx = 1").is_err());
    }

    #[test]
    fn regression_detected_beyond_tolerance() {
        let cfg = ToleranceConfig {
            default_tolerance: 0.05,
            ignore: vec![],
            higher_is_better: vec!["*qps".into()],
            overrides: vec![],
        };
        let base = [snap("run", &[("latency_ms", 100.0), ("qps", 1000.0)])];

        // Within tolerance: pass.
        let ok = compare(
            &base,
            &[snap("run", &[("latency_ms", 104.0), ("qps", 990.0)])],
            &cfg,
        );
        assert!(!ok.failed(), "{:?}", ok.regressions);
        assert_eq!(ok.compared, 2);

        // Latency up 20%: regression.
        let slow = compare(
            &base,
            &[snap("run", &[("latency_ms", 120.0), ("qps", 1000.0)])],
            &cfg,
        );
        assert!(slow.failed());
        assert_eq!(slow.regressions.len(), 1);
        let r = &slow.regressions[0];
        assert_eq!(r.metric, "run/gauge.latency_ms");
        assert!((r.rel_change - 0.20).abs() < 1e-12);

        // Throughput down 20%: regression in the flipped direction; a
        // throughput *gain* is not.
        let throttled = compare(
            &base,
            &[snap("run", &[("latency_ms", 100.0), ("qps", 800.0)])],
            &cfg,
        );
        assert_eq!(throttled.regressions.len(), 1);
        assert_eq!(throttled.regressions[0].metric, "run/gauge.qps");
        let faster = compare(
            &base,
            &[snap("run", &[("latency_ms", 80.0), ("qps", 1300.0)])],
            &cfg,
        );
        assert!(!faster.failed());
    }

    #[test]
    fn identical_snapshots_pass_at_zero_tolerance() {
        let cfg = ToleranceConfig {
            default_tolerance: 0.0,
            ignore: vec![],
            higher_is_better: vec![],
            overrides: vec![],
        };
        let a = [snap("run", &[("x", 41.5), ("zero", 0.0)])];
        let out = compare(&a, &a, &cfg);
        assert!(!out.failed());
        assert_eq!(out.compared, 2);
        // A zero baseline that becomes nonzero is an infinite regression.
        let out = compare(&a, &[snap("run", &[("x", 41.5), ("zero", 1.0)])], &cfg);
        assert!(out.failed());
        assert!(out.regressions[0].rel_change.is_infinite());
    }

    #[test]
    fn missing_and_new_metrics() {
        let cfg = ToleranceConfig::default();
        let base = [snap("run", &[("a", 1.0), ("b", 2.0)])];
        let cur = [snap("run", &[("a", 1.0), ("c", 3.0)])];
        let out = compare(&base, &cur, &cfg);
        assert_eq!(out.missing_in_current, vec!["run/gauge.b".to_string()]);
        assert_eq!(out.new_in_current, vec!["run/gauge.c".to_string()]);
        assert!(out.failed(), "a vanished tracked metric fails the gate");

        // An ignored metric may vanish freely.
        let cfg = ToleranceConfig {
            ignore: vec!["gauge.b".into()],
            ..ToleranceConfig::default()
        };
        assert!(!compare(&base, &cur, &cfg).failed());
    }

    /// A `--baseline`/`--current` path that is not a directory is a usage
    /// error (exit 2 in `bench_report`), and the message says so plainly
    /// instead of leaking a raw `read_dir` errno.
    #[test]
    fn missing_baseline_dir_is_a_usage_error() {
        let bogus = Path::new("/nonexistent/hdov-metrics-baseline");
        let err = load_snapshot_dir(bogus).unwrap_err();
        assert!(err.contains("does not exist"), "unhelpful error: {err}");
        assert!(err.contains("--baseline"), "should name the flag: {err}");
        assert!(
            err.contains(&bogus.display().to_string()),
            "should name the path: {err}"
        );
    }

    /// A missing metrics file gets the same treatment: a clear pointer at
    /// what should have produced it, not a bare I/O error.
    #[test]
    fn missing_metrics_file_is_a_usage_error() {
        let bogus = Path::new("/nonexistent/results/metrics/fig7_search.json");
        let err = load_snapshot_file(bogus).unwrap_err();
        assert!(err.contains("does not exist"), "unhelpful error: {err}");
        assert!(
            err.contains("bench bin"),
            "should say how to produce it: {err}"
        );
        assert!(
            err.contains(&bogus.display().to_string()),
            "should name the path: {err}"
        );
    }

    /// Round-trip through a real directory: written snapshots load back in
    /// file-name order, and a malformed file is reported by path.
    #[test]
    fn snapshot_dir_round_trips_and_reports_bad_json_by_path() {
        let dir =
            std::env::temp_dir().join(format!("hdov-bench-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let b = snap("b_run", &[("x", 2.0)]);
        let a = snap("a_run", &[("x", 1.0)]);
        std::fs::write(dir.join("b.json"), b.to_json()).unwrap();
        std::fs::write(dir.join("a.json"), a.to_json()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored: not json").unwrap();

        let snaps = load_snapshot_dir(&dir).unwrap();
        assert_eq!(snaps.len(), 2, "non-json files are skipped");
        assert_eq!(snaps[0].name, "a_run", "sorted by file name");
        assert_eq!(snaps[1].name, "b_run");

        std::fs::write(dir.join("c.json"), "{ not json").unwrap();
        let err = load_snapshot_dir(&dir).unwrap_err();
        assert!(err.contains("c.json"), "bad file not named: {err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_and_histograms_flatten() {
        let mut s = MetricsSnapshot::new("f");
        s.set_counter("pool_hits", 7);
        let h = hdov_obs::Histogram::new();
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        s.set_histogram("sim_search_us", h.snapshot());
        let flat = flatten(&s);
        assert_eq!(flat["counter.pool_hits"], 7.0);
        assert_eq!(flat["hist.sim_search_us.count"], 3.0);
        assert_eq!(flat["hist.sim_search_us.sum"], 60.0);
        assert_eq!(flat["hist.sim_search_us.mean"], 20.0);
        assert_eq!(flat["hist.sim_search_us.max"], 30.0);
    }
}
