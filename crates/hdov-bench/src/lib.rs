//! Shared infrastructure for the table/figure harness binaries.
//!
//! Every binary reproduces one table or figure of the paper's §5 and prints
//! the paper's reported values next to the measured ones. Pass `--quick` to
//! any binary for a fast smoke run on a smaller scene (shapes hold, absolute
//! numbers shrink); results are also written as CSV under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use hdov_core::{
    HdovBuildConfig, HdovEnvironment, QueryResult, ResultKey, SearchStats, StorageScheme,
    VPageCodec,
};
use hdov_geom::Vec3;
use hdov_scene::{CityConfig, Scene};
use hdov_storage::{FileMode, StorageBackend};
use hdov_visibility::{CellGrid, CellGridConfig, DovConfig, DovTable};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Paper η sweep of Figs. 7–8 (the text: "η values in [0, 0.008]"), plus
/// two extended points showing where our scaled scene's curves flatten
/// past the paper's endpoint (see EXPERIMENTS.md).
pub const ETA_SWEEP: [f64; 8] = [0.0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.012, 0.016];

/// Table 3's η column.
pub const TABLE3_ETAS: [f64; 9] = [
    0.0, 0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.001, 0.002, 0.004,
];

/// Storage-backend axis of the harness (`--backend mem|file|file:pread`).
///
/// `mem` serves every frozen store from memory (the deterministic default);
/// the file variants serialize each built store as a frozen-store file and
/// serve pages from it, mmap'd or via positioned reads. CSV cells derive
/// exclusively from the simulated cost model, so they are byte-identical
/// across backends — the file backends add *wall-clock* I/O measurements as
/// a separate, never-gated metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchBackend {
    /// In-memory frozen stores (default).
    #[default]
    Mem,
    /// File-backed stores, read through a shared read-only mapping.
    FileMmap,
    /// File-backed stores, read through `pread`-style positioned reads.
    FilePread,
}

impl BenchBackend {
    fn parse(arg: &str) -> Option<Self> {
        match arg {
            "mem" => Some(BenchBackend::Mem),
            "file" | "file:mmap" => Some(BenchBackend::FileMmap),
            "file:pread" => Some(BenchBackend::FilePread),
            _ => None,
        }
    }

    /// Short stable label (matches [`StorageBackend::label`]).
    pub fn label(self) -> &'static str {
        match self {
            BenchBackend::Mem => "mem",
            BenchBackend::FileMmap => "file:mmap",
            BenchBackend::FilePread => "file:pread",
        }
    }

    /// Whether pages are served from real files.
    pub fn is_file(self) -> bool {
        self != BenchBackend::Mem
    }

    /// The concrete [`StorageBackend`] for harness binary `bin`. File
    /// stores go under `results/store/<bin>` (base directory overridable
    /// via `HDOV_STORE_DIR`); the per-binary subdirectory keeps parallel
    /// binaries from truncating each other's live mappings.
    pub fn storage(self, bin: &str) -> StorageBackend {
        let mode = match self {
            BenchBackend::Mem => return StorageBackend::Mem,
            BenchBackend::FileMmap => FileMode::Mmap,
            BenchBackend::FilePread => FileMode::Pread,
        };
        let base = std::env::var_os("HDOV_STORE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/store"));
        StorageBackend::File {
            dir: base.join(bin),
            mode,
            replicas: 1,
        }
    }
}

/// Harness run options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Smaller scene, fewer queries (CI / smoke).
    pub quick: bool,
    /// Where frozen stores live during the run.
    pub backend: BenchBackend,
    /// V-page wire format (`--codec raw|delta`). Answers are byte-identical
    /// across codecs; simulated I/O and storage footprints are not.
    pub codec: VPageCodec,
    /// Store copies per pool (`--backend file:mmap@2` or `--replicas N`).
    /// Answers and simulated costs are byte-identical at any count — extra
    /// replicas only matter under faults. `mem` rejects N > 1 like
    /// [`StorageBackend::from_arg`] does.
    pub replicas: usize,
}

impl RunOptions {
    /// Parses `--quick`, `--backend <mem|file|file:mmap|file:pread>` (with
    /// an optional `@N` replica suffix), `--replicas <n>`, and `--codec
    /// <raw|delta>` (also the `--flag=<...>` forms) from the process
    /// arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick" || a == "-q");
        let mut backend = BenchBackend::Mem;
        let mut codec = VPageCodec::default();
        let mut replicas = 1usize;
        for (i, a) in args.iter().enumerate() {
            let val = if let Some(v) = a.strip_prefix("--backend=") {
                Some(v.to_string())
            } else if a == "--backend" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = val {
                let (base, copies) = match v.split_once('@') {
                    Some((b, n)) => (b, n.parse::<usize>().ok().filter(|&n| n >= 1)),
                    None => (v.as_str(), Some(replicas)),
                };
                backend = BenchBackend::parse(base).unwrap_or_else(|| {
                    eprintln!(
                        "unknown --backend {v:?}; use mem, file, file:mmap, or file:pread \
                         (optionally with an @N replica suffix)"
                    );
                    std::process::exit(2);
                });
                replicas = copies.unwrap_or_else(|| {
                    eprintln!("bad replica count in --backend {v:?}");
                    std::process::exit(2);
                });
            }
            let rval = if let Some(v) = a.strip_prefix("--replicas=") {
                Some(v.to_string())
            } else if a == "--replicas" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = rval {
                replicas = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --replicas {v:?}; use an integer >= 1");
                        std::process::exit(2);
                    });
            }
            let cval = if let Some(v) = a.strip_prefix("--codec=") {
                Some(v.to_string())
            } else if a == "--codec" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = cval {
                codec = VPageCodec::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown --codec {v:?}; use raw or delta");
                    std::process::exit(2);
                });
            }
        }
        if replicas > 1 && backend == BenchBackend::Mem {
            eprintln!("--replicas {replicas} needs a file backend (mem stores are not replicated)");
            std::process::exit(2);
        }
        RunOptions {
            quick,
            backend,
            codec,
            replicas,
        }
    }

    /// Relocates `env` onto the selected backend (a no-op on `mem`, so the
    /// default path is byte-for-byte the historical in-memory run). `bin`
    /// names the store directory — pass the binary's snapshot name.
    pub fn relocate(&self, bin: &str, env: &mut HdovEnvironment) {
        if self.backend.is_file() {
            env.relocate(&self.backend.storage(bin).replicated(self.replicas))
                .expect("relocate environment onto file backend");
        }
    }

    /// Number of visibility queries for Fig. 7/8-style sweeps.
    pub fn query_count(&self) -> usize {
        if self.quick {
            200
        } else {
            2000
        }
    }

    /// Session length in frames.
    pub fn session_frames(&self) -> usize {
        if self.quick {
            80
        } else {
            400
        }
    }
}

/// The evaluation scene bundle shared by the harness binaries.
pub struct EvalScene {
    /// The generated city.
    pub scene: Scene,
    /// The viewing-cell grid, shared (`Arc`) by every system under test.
    pub grid: Arc<CellGrid>,
    /// Ground-truth DoV table, shared (`Arc`) by every system under test —
    /// cloning the handle is a pointer bump, not a copy of the table.
    pub table: Arc<DovTable>,
    /// The build configuration used for HDoV environments.
    pub build_cfg: HdovBuildConfig,
}

impl EvalScene {
    /// Builds the default evaluation scene (the paper's "default dataset",
    /// byte-scaled; see DESIGN.md §3).
    pub fn standard(opts: &RunOptions) -> EvalScene {
        let city = if opts.quick {
            CityConfig::small()
        } else {
            CityConfig::default_paper()
        };
        Self::from_city(city.seed(2003), opts)
    }

    /// Builds an evaluation bundle from an explicit city config.
    pub fn from_city(city: CityConfig, opts: &RunOptions) -> EvalScene {
        let scene = city.generate();
        let (nx, ny) = if opts.quick { (8, 8) } else { (24, 24) };
        let grid = CellGridConfig::for_scene(&scene)
            .with_resolution(nx, ny)
            .build();
        let dov = DovConfig {
            rays_per_viewpoint: if opts.quick { 2048 } else { 8192 },
            viewpoints_per_cell: 5,
            seed: 2003,
            ..Default::default()
        };
        let build_cfg = HdovBuildConfig {
            dov,
            codec: opts.codec,
            ..Default::default()
        };
        let table = DovTable::compute(&scene, &grid, &dov, 0);
        EvalScene {
            scene,
            grid: Arc::new(grid),
            table: Arc::new(table),
            build_cfg,
        }
    }

    /// Instantiates an HDoV environment with the given storage scheme,
    /// reusing the shared DoV table.
    pub fn environment(&self, scheme: StorageScheme) -> HdovEnvironment {
        HdovEnvironment::build_with_table(
            &self.scene,
            self.grid.clone(),
            self.build_cfg.clone(),
            scheme,
            self.table.clone(),
        )
        .expect("environment build")
    }

    /// `n` deterministic random viewpoints inside the walkable region
    /// ("random viewpoint positions obtained from the precomputed cells").
    pub fn random_viewpoints(&self, n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = hdov_geom::sampling::SplitMix64::new(seed);
        let r = self.scene.viewpoint_region();
        let e = r.extent();
        (0..n)
            .map(|_| {
                Vec3::new(
                    r.min.x + rng.next_f64() * e.x,
                    r.min.y + rng.next_f64() * e.y,
                    (r.min.z + r.max.z) * 0.5,
                )
            })
            .collect()
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes rows as CSV under `results/<name>.csv` (best effort — harness
/// output is also printed).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(f, "{}", row.join(","));
    }
    println!("[csv] wrote {}", path.display());
}

/// Turns instrumentation on (and clears any previous state) for a harness
/// binary that will emit a metrics snapshot at the end of its run.
pub fn start_metrics() {
    hdov_obs::reset();
    hdov_obs::enable();
}

/// Writes `results/metrics/<name>.json`: the table the binary just printed,
/// flattened to gauges, merged with everything the obs registry recorded.
///
/// The first `label_cols` columns of each row identify it; each remaining
/// column becomes a gauge keyed `<h0><v0>[.<h1><v1>].<header>` (for example
/// `eta0.002.indexed_ms`). Cells that do not parse as numbers (for example
/// pretty-printed byte sizes) are skipped. Only CSV-formatted values enter
/// the snapshot, so gauges are exactly as machine-independent as the CSVs.
pub fn write_metrics_snapshot(
    name: &str,
    label_cols: usize,
    headers: &[&str],
    rows: &[Vec<String>],
) {
    let mut snap = hdov_obs::snapshot(name);
    hdov_obs::disable();
    for row in rows {
        let prefix: Vec<String> = (0..label_cols.min(row.len()))
            .map(|i| format!("{}{}", headers[i], row[i]))
            .collect();
        let prefix = prefix.join(".");
        for (header, cell) in headers.iter().zip(row).skip(label_cols) {
            if let Ok(v) = cell.parse::<f64>() {
                snap.set_gauge(format!("{prefix}.{header}"), v);
            }
        }
    }
    let dir = PathBuf::from("results/metrics");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if std::fs::write(&path, snap.to_json()).is_ok() {
        println!("[metrics] wrote {}", path.display());
    }
}

/// Codec-invariant digest of one query's outcome: an FNV-1a hash (the
/// storage layer's `page_checksum`) over the serialized result entries and
/// the traversal counters. Simulated I/O charges are deliberately excluded —
/// they legitimately shrink under the Delta codec — so this digest must be
/// byte-identical between `--codec raw` and `--codec delta` runs; the CI
/// `codec-equivalence` job compares the `*_answers.csv` files built from it.
pub fn answers_digest(r: &QueryResult, st: &SearchStats) -> u64 {
    let mut bytes = Vec::with_capacity(16 + r.entries().len() * 37);
    for e in r.entries() {
        match e.key {
            ResultKey::Object(h) => {
                bytes.push(0);
                bytes.extend_from_slice(&h.to_le_bytes());
            }
            ResultKey::Internal(o) => {
                bytes.push(1);
                bytes.extend_from_slice(&u64::from(o).to_le_bytes());
            }
        }
        bytes.extend_from_slice(&(e.level as u64).to_le_bytes());
        bytes.extend_from_slice(&e.polygons.to_le_bytes());
        bytes.extend_from_slice(&e.bytes.to_le_bytes());
        bytes.extend_from_slice(&e.dov.to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(&st.nodes_visited.to_le_bytes());
    bytes.extend_from_slice(&st.vpages_fetched.to_le_bytes());
    hdov_storage::page_checksum(&bytes)
}

/// Mean of an iterator.
pub fn mean(it: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MB");
        assert!(fmt_bytes(5 * 1024 * 1024 * 1024).contains("GB"));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn run_options_defaults() {
        let o = RunOptions {
            quick: false,
            backend: BenchBackend::Mem,
            codec: VPageCodec::Delta,
            replicas: 1,
        };
        assert_eq!(o.query_count(), 2000);
        assert_eq!(o.session_frames(), 400);
        let q = RunOptions {
            quick: true,
            backend: BenchBackend::Mem,
            codec: VPageCodec::Delta,
            replicas: 1,
        };
        assert!(q.query_count() < o.query_count());
        assert!(q.session_frames() < o.session_frames());
    }

    #[test]
    fn backend_axis_parses_and_routes() {
        assert_eq!(BenchBackend::parse("mem"), Some(BenchBackend::Mem));
        assert_eq!(BenchBackend::parse("file"), Some(BenchBackend::FileMmap));
        assert_eq!(
            BenchBackend::parse("file:pread"),
            Some(BenchBackend::FilePread)
        );
        assert_eq!(BenchBackend::parse("tape"), None);
        assert!(!BenchBackend::Mem.is_file());
        assert_eq!(BenchBackend::Mem.storage("fig7"), StorageBackend::Mem);
        let s = BenchBackend::FileMmap.storage("fig7");
        assert!(s.is_file());
        assert_eq!(s.label(), "file:mmap");
        if let StorageBackend::File { dir, .. } = &s {
            assert!(dir.ends_with("fig7"));
        }
        assert_eq!(BenchBackend::FilePread.storage("x").label(), "file:pread");
    }

    /// Heavy smoke test over the shared harness plumbing; run with
    /// `cargo test -p hdov-bench -- --ignored`.
    #[test]
    #[ignore = "builds a full quick-mode evaluation scene (~seconds)"]
    fn eval_scene_smoke() {
        let opts = RunOptions {
            quick: true,
            backend: BenchBackend::Mem,
            codec: VPageCodec::Delta,
            replicas: 1,
        };
        let eval = EvalScene::standard(&opts);
        assert!(eval.scene.len() > 100);
        assert_eq!(eval.table.cell_count(), eval.grid.cell_count());
        let vps = eval.random_viewpoints(10, 1);
        assert_eq!(vps.len(), 10);
        let mut env = eval.environment(hdov_core::StorageScheme::IndexedVertical);
        let (r, st) = env.query_with_stats(vps[0], 0.001).unwrap();
        assert!(!r.entries().is_empty());
        assert!(st.search_time_ms() > 0.0);
    }

    #[test]
    fn eta_sweep_matches_paper_range() {
        assert_eq!(ETA_SWEEP[0], 0.0);
        // The paper's range is [0, 0.008]; two extended points follow.
        assert!(ETA_SWEEP.contains(&0.008));
        assert!(ETA_SWEEP.windows(2).all(|w| w[0] < w[1]));
        assert!(TABLE3_ETAS.windows(2).all(|w| w[0] < w[1]));
    }
}
