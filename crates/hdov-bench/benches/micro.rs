//! Criterion microbenchmarks of the core operations behind the paper's
//! experiments: R-tree window queries, HDoV threshold search per storage
//! scheme, the naïve baseline, DoV cell estimation, mesh simplification, and
//! LoD selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdov_core::{HdovBuildConfig, HdovEnvironment, StorageScheme};
use hdov_geom::{Aabb, Vec3};
use hdov_mesh::{generate, simplify};
use hdov_rtree::{RTree, SplitMethod};
use hdov_scene::CityConfig;
use hdov_storage::MemPagedFile;
use hdov_visibility::{Bvh, CellGridConfig, DovConfig, DovTable};
use std::hint::black_box;

fn bench_scene() -> hdov_scene::Scene {
    CityConfig::small().seed(42).generate()
}

fn rtree_window_query(c: &mut Criterion) {
    let scene = bench_scene();
    let mut tree = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 16).unwrap();
    for o in scene.objects() {
        tree.insert(o.mbr, o.id).unwrap();
    }
    let center = scene.bounds().center();
    let q = Aabb::from_center_half_extent(center, Vec3::new(100.0, 100.0, 100.0));
    c.bench_function("rtree/window_query_200m", |b| {
        b.iter(|| black_box(tree.window_query(black_box(&q)).unwrap().len()))
    });
}

fn hdov_search_by_scheme(c: &mut Criterion) {
    let scene = bench_scene();
    let grid_cfg = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let cfg = HdovBuildConfig {
        dov: DovConfig {
            rays_per_viewpoint: 1024,
            viewpoints_per_cell: 3,
            seed: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let vp = scene.bounds().center();
    let mut group = c.benchmark_group("hdov/search_eta0.001");
    for scheme in StorageScheme::all() {
        let mut env = HdovEnvironment::build(&scene, &grid_cfg, cfg.clone(), scheme).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(scheme), &(), |b, _| {
            b.iter(|| black_box(env.query(black_box(vp), 0.001).unwrap().total_polygons()))
        });
    }
    group.finish();
}

fn naive_vs_hdov(c: &mut Criterion) {
    let scene = bench_scene();
    let grid_cfg = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let cfg = HdovBuildConfig {
        dov: DovConfig {
            rays_per_viewpoint: 1024,
            viewpoints_per_cell: 3,
            seed: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut env =
        HdovEnvironment::build(&scene, &grid_cfg, cfg, StorageScheme::IndexedVertical).unwrap();
    let vp = scene.bounds().center();
    c.bench_function("hdov/naive_query", |b| {
        b.iter(|| black_box(env.query_naive(black_box(vp)).unwrap().0.total_polygons()))
    });
}

fn dov_estimation(c: &mut Criterion) {
    let scene = bench_scene();
    let boxes: Vec<Aabb> = scene.objects().iter().map(|o| o.mbr).collect();
    let bvh = Bvh::build(boxes, Some(0.0));
    let dirs = hdov_geom::sampling::random_sphere(1024, 5);
    let origin = scene.viewpoint_region().center();
    c.bench_function("dov/first_hit_1024_rays", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for d in &dirs {
                if matches!(
                    bvh.first_hit(&hdov_geom::Ray::new(origin, *d)),
                    hdov_visibility::bvh::Hit::Object { .. }
                ) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    let grid = CellGridConfig::for_scene(&scene)
        .with_resolution(2, 2)
        .build();
    c.bench_function("dov/table_2x2_cells", |b| {
        b.iter(|| {
            black_box(DovTable::compute(
                &scene,
                &grid,
                &DovConfig {
                    rays_per_viewpoint: 512,
                    viewpoints_per_cell: 3,
                    seed: 1,
                    ..Default::default()
                },
                1,
            ))
        })
    });
}

fn prioritized_search(c: &mut Criterion) {
    let scene = bench_scene();
    let grid_cfg = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let cfg = HdovBuildConfig {
        dov: DovConfig {
            rays_per_viewpoint: 1024,
            viewpoints_per_cell: 3,
            seed: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut env =
        HdovEnvironment::build(&scene, &grid_cfg, cfg, StorageScheme::IndexedVertical).unwrap();
    let eye = scene.viewpoint_region().center();
    let frustum = hdov_geom::Frustum::new(eye, Vec3::X, Vec3::Z, 1.2, 1.6, 0.5, 5000.0);
    c.bench_function("hdov/prioritized_search", |b| {
        b.iter(|| {
            let (o, _) = env
                .query_prioritized(black_box(&frustum), 0.001, None)
                .unwrap();
            black_box(o.result.total_polygons())
        })
    });
}

fn mesh_simplification(c: &mut Criterion) {
    let sphere = generate::icosphere(1.0, 3); // 1280 faces
    c.bench_function("mesh/simplify_1280_to_128", |b| {
        b.iter(|| black_box(simplify(black_box(&sphere), 128).triangle_count()))
    });
}

fn lod_selection(c: &mut Criterion) {
    let scene = bench_scene();
    let mut disk =
        hdov_storage::SimulatedDisk::new(MemPagedFile::new(), hdov_storage::DiskModel::FREE);
    let store = hdov_scene::ModelStore::build(
        &mut disk,
        scene
            .objects()
            .iter()
            .map(|o| scene.prototypes().chain(o.prototype)),
    )
    .unwrap();
    c.bench_function("lod/select_level", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in 0..100 {
                acc += store.select_level(black_box(3), k as f64 / 100.0);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = rtree_window_query, hdov_search_by_scheme, naive_vs_hdov,
              prioritized_search, dov_estimation, mesh_simplification, lod_selection
}
criterion_main!(benches);
