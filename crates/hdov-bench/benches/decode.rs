//! `decode_bench` — microbenchmarks of the zero-copy hot read path.
//!
//! Three comparisons quantify what the `Arc<Frame>` + decoded-overlay
//! rework buys on pool hits:
//!
//! * `frame_hit_arc_clone` vs `page_hit_memcpy`: handing back the pooled
//!   frame vs copying the page into a caller buffer;
//! * `node_overlay/memoized` vs `node_overlay/rerun`: reading every node
//!   through the memoized overlay vs re-running `HdovNode::decode` per read
//!   (the `decode_overlay: false` A/B arm);
//! * `search_shared_steady/*`: a full steady-state query sweep over warm
//!   pools, overlays on vs off — the end-to-end CPU win.
//!
//! Kept deliberately small (tiny scene, fast build) so the CI perf gate can
//! run it as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdov_core::{
    search_shared_into, HdovBuildConfig, HdovEnvironment, PoolConfig, SearchScratch,
    SharedEnvironment, StorageScheme, VEntry, VPage, VPageCodec,
};
use hdov_scene::CityConfig;
use hdov_storage::{IoCursor, Page, PageId, PAGE_SIZE};
use hdov_visibility::{CellGridConfig, CellId};
use std::hint::black_box;

fn shared_env(decode_overlay: bool) -> SharedEnvironment {
    let scene = CityConfig::tiny().seed(11).generate();
    let grid_cfg = CellGridConfig::for_scene(&scene).with_resolution(3, 3);
    HdovEnvironment::build(
        &scene,
        &grid_cfg,
        HdovBuildConfig::fast_test(),
        StorageScheme::IndexedVertical,
    )
    .unwrap()
    .into_shared(PoolConfig {
        capacity_pages: 4096,
        shards: 8,
        decode_overlay,
        ..PoolConfig::default()
    })
}

/// Pool hit served as an `Arc` clone vs copied into a caller-owned page.
fn frame_vs_copy(c: &mut Criterion) {
    let env = shared_env(true);
    let pool = env.vstore().vpages().pool();
    let mut cur = IoCursor::new();
    pool.read_frame(&mut cur, PageId(0)).unwrap(); // warm

    c.bench_function("decode/frame_hit_arc_clone", |b| {
        b.iter(|| black_box(pool.read_frame(&mut cur, PageId(0)).unwrap().id()))
    });

    let mut out = Page::zeroed();
    c.bench_function("decode/page_hit_memcpy", |b| {
        b.iter(|| {
            pool.read_page(&mut cur, PageId(0), &mut out).unwrap();
            black_box(out.bytes()[0])
        })
    });
}

/// Every node read through the overlay: memoized decode vs rerun-per-read.
fn node_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/node_overlay");
    for (label, overlay) in [("memoized", true), ("rerun", false)] {
        let env = shared_env(overlay);
        let n = env.tree().node_count();
        let mut cur = IoCursor::new();
        for ordinal in 0..n {
            env.tree().read_node(&mut cur, ordinal).unwrap(); // warm
        }
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut entries = 0usize;
                for ordinal in 0..n {
                    entries += env
                        .tree()
                        .read_node(&mut cur, ordinal)
                        .unwrap()
                        .entries
                        .len();
                }
                black_box(entries)
            })
        });
    }
    group.finish();
}

/// Steady-state query sweep over warm pools: the end-to-end hit path.
fn search_shared_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/search_shared_steady");
    for (label, overlay) in [("overlay_on", true), ("overlay_off", false)] {
        let env = shared_env(overlay);
        let cells: Vec<CellId> = (0..env.grid().cell_count() as CellId).collect();
        let mut ctx = env.session();
        let mut scratch = SearchScratch::new();
        for &cell in &cells {
            search_shared_into(&env, &mut ctx, &mut scratch, cell, 0.002, None, true).unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut polygons = 0u64;
                for &cell in &cells {
                    search_shared_into(&env, &mut ctx, &mut scratch, cell, 0.002, None, true)
                        .unwrap();
                    polygons += scratch.result().total_polygons();
                }
                black_box(polygons)
            })
        });
    }
    group.finish();
}

/// Batch decode of one disk page worth of V-page records — the per-frame
/// CPU the codec adds on a pool miss (the decoded-overlay closure's loop).
/// `decode/vpage_batch/delta` is gated by the CI perf job against the
/// checked-in budget in `ci/decode_budget.toml`.
fn vpage_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/vpage_batch");
    for codec in [VPageCodec::Raw, VPageCodec::Delta] {
        // Paper-regime pages: ascending NVOs with small gaps, all visible.
        let pages: Vec<VPage> = (0..128u32)
            .map(|p| {
                let mut nvo = 0u32;
                VPage::new(
                    (0..12u32)
                        .map(|i| {
                            nvo += 1 + (p + i) % 7;
                            VEntry {
                                dov: 0.3 + i as f32 * 0.01,
                                nvo,
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let record_bytes = pages.iter().map(|vp| codec.record_len(vp)).max().unwrap();
        let rpp = (PAGE_SIZE / record_bytes).max(1).min(pages.len());
        let mut buf = vec![0u8; PAGE_SIZE];
        for (slot, vp) in pages.iter().take(rpp).enumerate() {
            let rec = codec.encode_record(vp, record_bytes).unwrap();
            buf[slot * record_bytes..(slot + 1) * record_bytes].copy_from_slice(&rec);
        }
        group.bench_function(BenchmarkId::from_parameter(codec.label()), |b| {
            b.iter(|| {
                let mut entries = 0usize;
                for slot in 0..rpp {
                    entries += codec
                        .decode_record(&buf[slot * record_bytes..(slot + 1) * record_bytes])
                        .unwrap()
                        .entries
                        .len();
                }
                black_box(entries)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = frame_vs_copy, node_overlay, search_shared_steady, vpage_batch
}
criterion_main!(benches);
