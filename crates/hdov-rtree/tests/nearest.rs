//! k-nearest-neighbour queries vs brute force.

use hdov_geom::{Aabb, Vec3};
use hdov_rtree::{RTree, SplitMethod};
use hdov_storage::MemPagedFile;
use proptest::prelude::*;

fn boxes(n: usize, seed: u64) -> Vec<(Aabb, u64)> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64) * 600.0
    };
    (0..n)
        .map(|i| {
            let p = Vec3::new(next(), next(), next());
            (Aabb::new(p, p + Vec3::splat(3.0)), i as u64)
        })
        .collect()
}

fn build(items: &[(Aabb, u64)]) -> RTree<MemPagedFile> {
    let mut t = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
    for &(mbr, id) in items {
        t.insert(mbr, id).unwrap();
    }
    t
}

fn brute_nearest(items: &[(Aabb, u64)], p: Vec3, k: usize) -> Vec<(u64, f64)> {
    let mut all: Vec<(u64, f64)> = items
        .iter()
        .map(|&(mbr, id)| (id, mbr.distance_to_point(p)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[test]
fn nearest_matches_brute_force_basics() {
    let items = boxes(200, 7);
    let mut t = build(&items);
    for (k, p) in [
        (1, Vec3::splat(300.0)),
        (5, Vec3::ZERO),
        (25, Vec3::new(600.0, 0.0, 300.0)),
    ] {
        let got = t.nearest(p, k).unwrap();
        let want = brute_nearest(&items, p, k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g.1 - w.1).abs() < 1e-9,
                "distance mismatch: {g:?} vs {w:?}"
            );
        }
        // Distances are non-decreasing.
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
    }
}

#[test]
fn k_zero_and_k_over_size() {
    let items = boxes(10, 8);
    let mut t = build(&items);
    assert!(t.nearest(Vec3::ZERO, 0).unwrap().is_empty());
    let all = t.nearest(Vec3::ZERO, 50).unwrap();
    assert_eq!(all.len(), 10);
}

#[test]
fn point_inside_a_box_gets_distance_zero() {
    let items = vec![(Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), 42)];
    let mut t = build(&items);
    let got = t.nearest(Vec3::splat(5.0), 1).unwrap();
    assert_eq!(got, vec![(42, 0.0)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn nearest_distances_match_brute_force(
        n in 1usize..150,
        seed in 0u64..1000,
        k in 1usize..20,
        px in -100.0..700.0f64,
        py in -100.0..700.0f64,
        pz in -100.0..700.0f64,
    ) {
        let items = boxes(n, seed);
        let mut t = build(&items);
        let p = Vec3::new(px, py, pz);
        let got = t.nearest(p, k).unwrap();
        let want = brute_nearest(&items, p, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w.1).abs() < 1e-9);
        }
    }
}
