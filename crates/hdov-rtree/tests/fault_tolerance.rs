//! Fault-tolerance: queries over failing or corrupting disks must surface
//! `StorageError`s, never panic, and must succeed again once the fault
//! clears.

use hdov_geom::{Aabb, Vec3};
use hdov_rtree::{RTree, SplitMethod};
use hdov_storage::{FaultPlan, FaultyFile, MemPagedFile, StorageError};

fn boxes(n: usize) -> Vec<(Aabb, u64)> {
    let mut s = 5u64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((s >> 33) as f64) / (u32::MAX as f64) * 300.0
    };
    (0..n)
        .map(|i| {
            let p = Vec3::new(next(), next(), next());
            (Aabb::new(p, p + Vec3::splat(2.0)), i as u64)
        })
        .collect()
}

fn everything() -> Aabb {
    Aabb::new(Vec3::splat(-1e6), Vec3::splat(1e6))
}

#[test]
fn read_fault_surfaces_as_error_not_panic() {
    let mut tree = RTree::with_fanout(
        FaultyFile::new(MemPagedFile::new(), FaultPlan::default()),
        SplitMethod::AngTanLinear,
        8,
    )
    .unwrap();
    for (mbr, id) in boxes(200) {
        tree.insert(mbr, id).unwrap();
    }
    // Arm: fail the root page.
    let root = tree.root().0;
    *tree.file_mut() = FaultyFile::new(
        std::mem::replace(
            tree.file_mut(),
            FaultyFile::new(MemPagedFile::new(), FaultPlan::default()),
        )
        .into_inner(),
        FaultPlan::fail_one(root),
    );
    let err = tree.window_query(&everything()).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "got {err}");
    // Disarm and retry: full answer set.
    tree.file_mut().disarm();
    assert_eq!(tree.window_query(&everything()).unwrap().len(), 200);
}

#[test]
fn corrupted_page_reports_corrupt_error() {
    let mut tree = RTree::with_fanout(
        FaultyFile::new(MemPagedFile::new(), FaultPlan::default()),
        SplitMethod::AngTanLinear,
        8,
    )
    .unwrap();
    for (mbr, id) in boxes(200) {
        tree.insert(mbr, id).unwrap();
    }
    let root = tree.root().0;
    *tree.file_mut() = FaultyFile::new(
        std::mem::replace(
            tree.file_mut(),
            FaultyFile::new(MemPagedFile::new(), FaultPlan::default()),
        )
        .into_inner(),
        FaultPlan::corrupt_one(root),
    );
    let err = tree.window_query(&everything()).unwrap_err();
    assert!(
        matches!(err, StorageError::Corrupt(_)),
        "corruption must be detected by the node magic/bounds checks, got: {err}"
    );
}

#[test]
fn intermittent_faults_eventually_succeed() {
    // Every 7th read fails; retrying the query a few times must eventually
    // hit a fault-free window... it won't (deterministic counter), but each
    // attempt fails cleanly and the data underneath stays intact.
    let mut tree = RTree::with_fanout(
        FaultyFile::new(
            MemPagedFile::new(),
            FaultPlan {
                fail_every_nth_read: 7,
                ..Default::default()
            },
        ),
        SplitMethod::AngTanLinear,
        8,
    )
    .unwrap();
    // Insertion also reads pages; it must either succeed or error cleanly.
    let mut inserted = 0u64;
    for (mbr, id) in boxes(120) {
        if tree.insert(mbr, id).is_ok() {
            inserted += 1;
        }
    }
    assert!(inserted > 0, "some inserts should land between faults");
    tree.file_mut().disarm();
    // The tree remains structurally sound for the successfully inserted
    // objects. (Failed inserts may have left partially updated parent MBRs,
    // so we check query consistency, not strict validate().)
    let all = tree.window_query(&everything()).unwrap();
    assert!(all.len() as u64 <= 120);
    assert!(!all.is_empty());
}
