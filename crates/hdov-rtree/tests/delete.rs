//! R-tree deletion: Guttman Delete + CondenseTree.

use hdov_geom::{Aabb, Vec3};
use hdov_rtree::{RTree, SplitMethod};
use hdov_storage::MemPagedFile;

fn boxes(n: usize, seed: u64) -> Vec<(Aabb, u64)> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64) * 800.0
    };
    (0..n)
        .map(|i| {
            let p = Vec3::new(next(), next(), next());
            (Aabb::new(p, p + Vec3::splat(1.5)), i as u64)
        })
        .collect()
}

fn build(items: &[(Aabb, u64)], fanout: usize) -> RTree<MemPagedFile> {
    let mut t = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, fanout).unwrap();
    for &(mbr, id) in items {
        t.insert(mbr, id).unwrap();
    }
    t
}

fn everything() -> Aabb {
    Aabb::new(Vec3::splat(-1e6), Vec3::splat(1e6))
}

#[test]
fn delete_single_object() {
    let items = boxes(50, 1);
    let mut t = build(&items, 8);
    assert!(t.delete(items[7].0, 7).unwrap());
    assert_eq!(t.stats().object_count, 49);
    let ids: Vec<u64> = t
        .window_query(&everything())
        .unwrap()
        .iter()
        .map(|x| x.0)
        .collect();
    assert!(!ids.contains(&7));
    assert_eq!(ids.len(), 49);
    t.validate().unwrap();
}

#[test]
fn delete_missing_returns_false() {
    let items = boxes(20, 2);
    let mut t = build(&items, 8);
    assert!(!t.delete(items[3].0, 999).unwrap());
    // Right id, wrong box.
    assert!(!t
        .delete(Aabb::new(Vec3::splat(-9.0), Vec3::splat(-8.0)), 3)
        .unwrap());
    assert_eq!(t.stats().object_count, 20);
    t.validate().unwrap();
}

#[test]
fn delete_everything_in_insertion_order() {
    let items = boxes(120, 3);
    let mut t = build(&items, 6);
    for (i, &(mbr, id)) in items.iter().enumerate() {
        assert!(t.delete(mbr, id).unwrap(), "object {id} not found");
        assert_eq!(t.stats().object_count as usize, items.len() - i - 1);
    }
    assert!(t.window_query(&everything()).unwrap().is_empty());
}

#[test]
fn delete_everything_in_reverse_order_and_reinsert() {
    let items = boxes(150, 4);
    let mut t = build(&items, 8);
    for &(mbr, id) in items.iter().rev() {
        assert!(t.delete(mbr, id).unwrap());
    }
    assert_eq!(t.stats().object_count, 0);
    // The tree is still usable.
    for &(mbr, id) in &items {
        t.insert(mbr, id).unwrap();
    }
    t.validate().unwrap();
    assert_eq!(t.window_query(&everything()).unwrap().len(), 150);
}

#[test]
fn interleaved_insert_delete_matches_model() {
    use std::collections::HashSet;
    let items = boxes(300, 5);
    let mut t = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
    let mut model: HashSet<u64> = HashSet::new();
    let mut s = 99u64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 33) as usize
    };
    for step in 0..600 {
        let idx = next() % items.len();
        let (mbr, id) = items[idx];
        if step % 3 == 2 && model.contains(&id) {
            assert!(t.delete(mbr, id).unwrap());
            model.remove(&id);
        } else if !model.contains(&id) {
            t.insert(mbr, id).unwrap();
            model.insert(id);
        }
        if step % 100 == 99 {
            let mut got: Vec<u64> = t
                .window_query(&everything())
                .unwrap()
                .iter()
                .map(|x| x.0)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u64> = model.iter().copied().collect();
            want.sort_unstable();
            assert_eq!(got, want, "diverged at step {step}");
        }
    }
    t.validate().unwrap();
}

#[test]
fn duplicate_boxes_delete_only_matching_id() {
    let mbr = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
    let mut t = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
    for id in 0..10u64 {
        t.insert(mbr, id).unwrap();
    }
    assert!(t.delete(mbr, 4).unwrap());
    let mut ids: Vec<u64> = t
        .window_query(&everything())
        .unwrap()
        .iter()
        .map(|x| x.0)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
}
