//! Property-based tests: the R-tree agrees with brute force and preserves
//! its structural invariants under arbitrary workloads.

use hdov_geom::{Aabb, Vec3};
use hdov_rtree::{bulk, RTree, SplitMethod};
use hdov_storage::MemPagedFile;
use proptest::prelude::*;

fn boxes(max: usize) -> impl Strategy<Value = Vec<(Aabb, u64)>> {
    prop::collection::vec(
        (
            -500.0..500.0f64,
            -500.0..500.0f64,
            -500.0..500.0f64,
            0.1..50.0f64,
            0.1..50.0f64,
            0.1..50.0f64,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, z, w, h, d))| {
                let min = Vec3::new(x, y, z);
                (Aabb::new(min, min + Vec3::new(w, h, d)), i as u64)
            })
            .collect()
    })
}

fn query() -> impl Strategy<Value = Aabb> {
    (
        -600.0..600.0f64,
        -600.0..600.0f64,
        -600.0..600.0f64,
        1.0..400.0f64,
    )
        .prop_map(|(x, y, z, s)| {
            let min = Vec3::new(x, y, z);
            Aabb::new(min, min + Vec3::splat(s))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_query_matches_brute_force(
        items in boxes(300),
        q in query(),
        fanout in 4usize..24,
        method in prop_oneof![Just(SplitMethod::AngTanLinear), Just(SplitMethod::GuttmanQuadratic)],
    ) {
        let mut tree = RTree::with_fanout(MemPagedFile::new(), method, fanout).unwrap();
        for (mbr, id) in &items {
            tree.insert(*mbr, *id).unwrap();
        }
        let mut got: Vec<u64> = tree.window_query(&q).unwrap().into_iter().map(|x| x.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn insertion_preserves_invariants(items in boxes(400), fanout in 4usize..16) {
        let mut tree =
            RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, fanout).unwrap();
        for (mbr, id) in &items {
            tree.insert(*mbr, *id).unwrap();
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.stats().object_count, items.len() as u64);
    }

    #[test]
    fn bulk_load_equals_insertion_results(items in boxes(250), q in query()) {
        let mut ins =
            RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
        for (mbr, id) in &items {
            ins.insert(*mbr, *id).unwrap();
        }
        let mut blk =
            bulk::bulk_load_with_fanout(MemPagedFile::new(), items.clone(), 0.7, 8).unwrap();
        blk.validate().unwrap();
        let mut a: Vec<u64> = ins.window_query(&q).unwrap().into_iter().map(|x| x.0).collect();
        let mut b: Vec<u64> = blk.window_query(&q).unwrap().into_iter().map(|x| x.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn point_queries_consistent_with_window(items in boxes(150), p in (-600.0..600.0f64, -600.0..600.0f64, -600.0..600.0f64)) {
        let p = Vec3::new(p.0, p.1, p.2);
        let mut tree =
            RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
        for (mbr, id) in &items {
            tree.insert(*mbr, *id).unwrap();
        }
        let mut got = tree.point_query(p).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(m, _)| m.contains_point(p))
            .map(|&(_, id)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
