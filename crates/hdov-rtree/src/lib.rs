//! A disk-resident R-tree — the spatial backbone of the HDoV-tree.
//!
//! The paper builds the HDoV-tree on a Guttman R-tree whose "insertion
//! algorithm applies a linear node splitting algorithm [Ang–Tan, SSD'97] to
//! minimize the overlap of the bounding boxes" (§5.1). This crate provides:
//!
//! * a paged node layout over any [`PagedFile`](hdov_storage::PagedFile),
//! * Guttman insertion with a choice of split algorithms
//!   ([`SplitMethod::AngTanLinear`] — the paper's choice — and
//!   [`SplitMethod::GuttmanQuadratic`] for comparison),
//! * STR bulk loading ([`bulk`]),
//! * window and point queries with exact I/O accounting, and
//! * a structure walker used by `hdov-core` to lift the topology into an
//!   HDoV-tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod entry;
pub mod node;
pub mod split;
pub mod tree;

pub use entry::{ChildRef, Entry};
pub use node::{Node, MAX_ENTRIES, MIN_ENTRIES};
pub use split::SplitMethod;
pub use tree::{RTree, TreeStats};
