//! STR (Sort-Tile-Recursive) bulk loading.
//!
//! The paper builds its index once over a static scene, which is exactly the
//! case bulk loading excels at: near-100% fill, minimal overlap, and a flat
//! construction cost. Provided alongside Guttman insertion so the ablation
//! benches can compare backbone quality.

use crate::entry::Entry;
use crate::node::{Node, MAX_ENTRIES};
use crate::split::SplitMethod;
use crate::tree::RTree;
use hdov_geom::Aabb;
use hdov_storage::{PagedFile, Result};

/// Bulk loads `items` into a fresh tree over `file` using STR at the full
/// page fan-out.
///
/// `fill` is the target entries-per-node in `(0, 1]` of capacity; the paper
/// era default is 0.7.
pub fn bulk_load<F: PagedFile>(file: F, items: Vec<(Aabb, u64)>, fill: f64) -> Result<RTree<F>> {
    bulk_load_with_fanout(file, items, fill, MAX_ENTRIES)
}

/// [`bulk_load`] with a capped fan-out `M = max_entries` (see
/// [`RTree::with_fanout`]).
pub fn bulk_load_with_fanout<F: PagedFile>(
    mut file: F,
    mut items: Vec<(Aabb, u64)>,
    fill: f64,
    max_entries: usize,
) -> Result<RTree<F>> {
    assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");
    let per_node = ((max_entries as f64 * fill).floor() as usize).clamp(2, max_entries);

    if items.is_empty() {
        return RTree::with_fanout(file, SplitMethod::AngTanLinear, max_entries);
    }
    let object_count = items.len() as u64;

    // STR tiling of the leaf level.
    let leaf_count = items.len().div_ceil(per_node);
    let slabs = (leaf_count as f64).cbrt().ceil() as usize; // slices along x
    sort_by_center(&mut items, 0);
    let per_slab_x = items.len().div_ceil(slabs);

    let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
    for chunk_x in items.chunks_mut(per_slab_x.max(1)) {
        sort_by_center_entryless(chunk_x, 1);
        let runs_y = chunk_x.len().div_ceil(per_node * slabs.max(1));
        let per_run_y = chunk_x.len().div_ceil(runs_y.max(1));
        for chunk_y in chunk_x.chunks_mut(per_run_y.max(1)) {
            sort_by_center_entryless(chunk_y, 2);
            for group in balanced_chunks(chunk_y, per_node) {
                let mut node = Node::new(true);
                node.entries
                    .extend(group.iter().map(|&(mbr, id)| Entry::object(mbr, id)));
                leaves.push(node);
            }
        }
    }

    // Write the leaf level, then build parents bottom-up.
    let mut node_count = 0u64;
    let mut level: Vec<Entry> = Vec::with_capacity(leaves.len());
    for node in &leaves {
        let page = file.allocate_page()?;
        file.write_page(page, &node.encode())?;
        node_count += 1;
        level.push(Entry::node(node.mbr(), page));
    }
    let mut height = 1u32;
    while level.len() > 1 {
        let mut next: Vec<Entry> = Vec::with_capacity(level.len().div_ceil(per_node));
        // Parents group children in x-sorted order for locality.
        level.sort_by(|a, b| {
            a.mbr
                .center()
                .x
                .partial_cmp(&b.mbr.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for group in balanced_chunks(&level, per_node) {
            let mut node = Node::new(false);
            node.entries.extend_from_slice(group);
            let page = file.allocate_page()?;
            file.write_page(page, &node.encode())?;
            node_count += 1;
            next.push(Entry::node(node.mbr(), page));
        }
        level = next;
        height += 1;
    }
    let root = level[0].child.as_node().expect("root entry is a node");
    Ok(RTree::from_parts(
        file,
        root,
        height,
        SplitMethod::AngTanLinear,
        node_count,
        object_count,
        max_entries,
    ))
}

/// Splits `items` into `ceil(len / per_node)` chunks whose sizes differ by
/// at most one, so no chunk is left with a tiny remainder (which would
/// violate the R-tree's minimum-fill invariant).
fn balanced_chunks<T>(items: &[T], per_node: usize) -> impl Iterator<Item = &[T]> {
    let count = items.len().div_ceil(per_node).max(1);
    let base = items.len() / count;
    let extra = items.len() % count;
    let mut start = 0;
    (0..count).map_while(move |i| {
        let size = base + usize::from(i < extra);
        if size == 0 {
            return None;
        }
        let chunk = &items[start..start + size];
        start += size;
        Some(chunk)
    })
}

fn sort_by_center(items: &mut [(Aabb, u64)], axis: usize) {
    items.sort_by(|a, b| {
        a.0.center()[axis]
            .partial_cmp(&b.0.center()[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

// Identical but named for chunk passes (separate fn keeps call sites clear).
fn sort_by_center_entryless(items: &mut [(Aabb, u64)], axis: usize) {
    sort_by_center(items, axis);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_geom::Vec3;
    use hdov_storage::MemPagedFile;

    fn boxes(n: usize) -> Vec<(Aabb, u64)> {
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64) / (u32::MAX as f64) * 500.0
        };
        (0..n)
            .map(|i| {
                let p = Vec3::new(next(), next(), next());
                (Aabb::new(p, p + Vec3::splat(2.0)), i as u64)
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let t = bulk_load(MemPagedFile::new(), vec![], 0.7).unwrap();
        assert_eq!(t.stats().object_count, 0);
    }

    #[test]
    fn bulk_load_validates_and_answers_queries() {
        let items = boxes(2000);
        let mut t = bulk_load(MemPagedFile::new(), items.clone(), 0.7).unwrap();
        t.validate().unwrap();
        assert_eq!(t.stats().object_count, 2000);
        let q = Aabb::new(Vec3::splat(100.0), Vec3::splat(250.0));
        let mut got: Vec<u64> = t
            .window_query(&q)
            .unwrap()
            .into_iter()
            .map(|x| x.0)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = items
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_is_compact() {
        let items = boxes(2000);
        let bulk = bulk_load(MemPagedFile::new(), items.clone(), 0.9).unwrap();
        let mut ins = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
        for (m, id) in items {
            ins.insert(m, id).unwrap();
        }
        assert!(
            bulk.stats().node_count <= ins.stats().node_count,
            "bulk {} vs insert {}",
            bulk.stats().node_count,
            ins.stats().node_count
        );
    }

    #[test]
    fn bulk_with_fanout_is_deeper_and_correct() {
        let items = boxes(600);
        let mut t = bulk_load_with_fanout(MemPagedFile::new(), items.clone(), 0.7, 8).unwrap();
        t.validate().unwrap();
        assert!(t.stats().height >= 3, "height {}", t.stats().height);
        let q = Aabb::new(Vec3::splat(0.0), Vec3::splat(250.0));
        let mut got: Vec<u64> = t
            .window_query(&q)
            .unwrap()
            .into_iter()
            .map(|x| x.0)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = items
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_item() {
        let mut t = bulk_load(
            MemPagedFile::new(),
            vec![(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)), 5)],
            0.7,
        )
        .unwrap();
        t.validate().unwrap();
        assert_eq!(t.stats().height, 1);
        assert_eq!(t.point_query(Vec3::splat(0.5)).unwrap(), vec![5]);
    }
}
