//! The paged R-tree proper: Guttman insertion, window/point queries, and a
//! structure walker.

use crate::entry::{ChildRef, Entry};
use crate::node::{Node, MAX_ENTRIES};
use crate::split::SplitMethod;
use hdov_geom::{Aabb, Vec3};
use hdov_storage::{Page, PageId, PagedFile, Result};

/// Summary statistics of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Tree height (1 = the root is a leaf).
    pub height: u32,
    /// Total number of nodes (pages).
    pub node_count: u64,
    /// Number of stored objects.
    pub object_count: u64,
}

/// A disk-resident R-tree over a [`PagedFile`].
///
/// Objects are `(Aabb, u64)` pairs; the payload id typically indexes a model
/// store. All reads go through the paged file, so wrapping the backend in a
/// [`SimulatedDisk`](hdov_storage::SimulatedDisk) meters the queries.
///
/// ```
/// use hdov_geom::{Aabb, Vec3};
/// use hdov_rtree::{RTree, SplitMethod};
/// use hdov_storage::MemPagedFile;
///
/// let mut tree = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
/// for i in 0..100u64 {
///     let p = Vec3::new(i as f64, 0.0, 0.0);
///     tree.insert(Aabb::new(p, p + Vec3::splat(0.5)), i).unwrap();
/// }
/// let q = Aabb::new(Vec3::new(10.0, 0.0, 0.0), Vec3::new(19.9, 1.0, 1.0));
/// assert_eq!(tree.window_query(&q).unwrap().len(), 10);
/// assert!(tree.delete(Aabb::new(Vec3::new(10.0, 0.0, 0.0), Vec3::new(10.5, 0.5, 0.5)), 10).unwrap());
/// assert_eq!(tree.window_query(&q).unwrap().len(), 9);
/// ```
#[derive(Debug)]
pub struct RTree<F> {
    file: F,
    root: PageId,
    height: u32,
    split: SplitMethod,
    node_count: u64,
    object_count: u64,
    max_entries: usize,
    min_entries: usize,
}

enum InsertOutcome {
    /// Child absorbed the entry; its MBR is now this.
    Resized(Aabb),
    /// Child split into two; replace its entry with these.
    Split(Entry, Entry),
}

impl<F: PagedFile> RTree<F> {
    /// Creates an empty tree in `file` (which should be fresh) with the full
    /// page fan-out ([`MAX_ENTRIES`]).
    pub fn new(file: F, split: SplitMethod) -> Result<Self> {
        Self::with_fanout(file, split, MAX_ENTRIES)
    }

    /// Creates an empty tree with a capped fan-out `M = max_entries`
    /// (`4 ≤ M ≤ MAX_ENTRIES`). Smaller fan-outs give deeper trees — useful
    /// for reproducing hierarchical behaviour on scaled-down datasets, and
    /// for matching another index's fan-out in comparisons.
    pub fn with_fanout(mut file: F, split: SplitMethod, max_entries: usize) -> Result<Self> {
        assert!(
            (4..=MAX_ENTRIES).contains(&max_entries),
            "fan-out {max_entries} out of range 4..={MAX_ENTRIES}"
        );
        let root = file.allocate_page()?;
        let node = Node::new(true);
        file.write_page(root, &node.encode())?;
        Ok(RTree {
            file,
            root,
            height: 1,
            split,
            node_count: 1,
            object_count: 0,
            max_entries,
            min_entries: (max_entries * 2) / 5,
        })
    }

    /// Builds a tree around an existing root: the bulk loader's assembly
    /// step, and how a persisted backbone (pages + metadata stored by the
    /// mutable write path) is re-adopted at open without re-inserting.
    pub fn from_parts(
        file: F,
        root: PageId,
        height: u32,
        split: SplitMethod,
        node_count: u64,
        object_count: u64,
        max_entries: usize,
    ) -> Self {
        RTree {
            file,
            root,
            height,
            split,
            node_count,
            object_count,
            max_entries,
            min_entries: (max_entries * 2) / 5,
        }
    }

    /// The fan-out cap `M`.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            height: self.height,
            node_count: self.node_count,
            object_count: self.object_count,
        }
    }

    /// Borrow the underlying paged file (e.g. to read I/O stats).
    pub fn file(&self) -> &F {
        &self.file
    }

    /// Mutably borrow the underlying paged file.
    pub fn file_mut(&mut self) -> &mut F {
        &mut self.file
    }

    /// Reads and decodes the node at `page`.
    pub fn read_node(&mut self, page: PageId) -> Result<Node> {
        let mut buf = Page::zeroed();
        self.file.read_page(page, &mut buf)?;
        Node::decode(&buf)
    }

    fn write_node(&mut self, page: PageId, node: &Node) -> Result<()> {
        self.file.write_page(page, &node.encode())
    }

    /// Inserts an object with bounding box `mbr`.
    pub fn insert(&mut self, mbr: Aabb, object_id: u64) -> Result<()> {
        let entry = Entry::object(mbr, object_id);
        match self.insert_rec(self.root, entry)? {
            InsertOutcome::Resized(_) => {}
            InsertOutcome::Split(a, b) => {
                // Grow a new root.
                let new_root = self.file.allocate_page()?;
                let mut root_node = Node::new(false);
                root_node.entries.push(a);
                root_node.entries.push(b);
                self.write_node(new_root, &root_node)?;
                self.root = new_root;
                self.height += 1;
                self.node_count += 1;
            }
        }
        self.object_count += 1;
        Ok(())
    }

    fn insert_rec(&mut self, page: PageId, entry: Entry) -> Result<InsertOutcome> {
        let mut node = self.read_node(page)?;
        if node.is_leaf {
            node.entries.push(entry);
            return self.finish_insert(page, node);
        }
        // ChooseLeaf: minimal enlargement, tie-break on smaller volume.
        let best = node
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ea = a.mbr.enlargement(&entry.mbr);
                let eb = b.mbr.enlargement(&entry.mbr);
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        a.mbr
                            .volume()
                            .partial_cmp(&b.mbr.volume())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .map(|(i, _)| i)
            .expect("internal node has no entries");
        let child_page = node.entries[best]
            .child
            .as_node()
            .expect("internal entry must reference a node");
        match self.insert_rec(child_page, entry)? {
            InsertOutcome::Resized(mbr) => {
                node.entries[best].mbr = mbr;
                self.finish_insert(page, node)
            }
            InsertOutcome::Split(a, b) => {
                node.entries[best] = a;
                node.entries.push(b);
                self.finish_insert(page, node)
            }
        }
    }

    /// Writes `node` back, splitting if overfull.
    fn finish_insert(&mut self, page: PageId, node: Node) -> Result<InsertOutcome> {
        if node.entries.len() <= self.max_entries {
            let mbr = node.mbr();
            self.write_node(page, &node)?;
            return Ok(InsertOutcome::Resized(mbr));
        }
        let is_leaf = node.is_leaf;
        let (left, right) = self.split.split(node.entries, self.min_entries);
        let left_node = Node {
            is_leaf,
            entries: left,
        };
        let right_node = Node {
            is_leaf,
            entries: right,
        };
        let right_page = self.file.allocate_page()?;
        self.node_count += 1;
        let (lm, rm) = (left_node.mbr(), right_node.mbr());
        self.write_node(page, &left_node)?;
        self.write_node(right_page, &right_node)?;
        Ok(InsertOutcome::Split(
            Entry::node(lm, page),
            Entry::node(rm, right_page),
        ))
    }

    /// Deletes the object `(mbr, object_id)` (Guttman's Delete with
    /// CondenseTree: under-full nodes are dissolved and their entries
    /// re-inserted). Returns true when the object was found and removed.
    pub fn delete(&mut self, mbr: Aabb, object_id: u64) -> Result<bool> {
        let mut orphans: Vec<(Aabb, u64)> = Vec::new();
        let mut orphan_subtrees: Vec<Entry> = Vec::new();
        let root = self.root;
        let found = self.delete_rec(
            root,
            &mbr,
            object_id,
            true,
            &mut orphans,
            &mut orphan_subtrees,
        )?;
        if !found {
            return Ok(false);
        }
        self.object_count -= 1;

        // Re-insert orphaned subtrees' objects (simplest CondenseTree
        // variant: reinsert at leaf level; orphaned subtrees are walked down
        // to their objects).
        while let Some(e) = orphan_subtrees.pop() {
            if let ChildRef::Node(page) = e.child {
                let node = self.read_node(page)?;
                self.node_count -= 1;
                for child in node.entries {
                    match child.child {
                        ChildRef::Object(id) => orphans.push((child.mbr, id)),
                        ChildRef::Node(_) => orphan_subtrees.push(child),
                    }
                }
            }
        }
        for (ombr, id) in orphans {
            self.object_count -= 1; // insert() will add it back
            self.insert(ombr, id)?;
        }

        // Shrink the root: an internal root with a single child is replaced
        // by that child.
        loop {
            let node = self.read_node(self.root)?;
            if !node.is_leaf && node.entries.len() == 1 {
                if let ChildRef::Node(child) = node.entries[0].child {
                    self.root = child;
                    self.height -= 1;
                    self.node_count -= 1;
                    continue;
                }
            }
            break;
        }
        Ok(true)
    }

    /// Recursive delete; returns true when the entry was removed below
    /// `page`. Under-full non-root nodes push their remaining entries to the orphan
    /// lists and report themselves for removal by returning with an empty
    /// entry set.
    fn delete_rec(
        &mut self,
        page: PageId,
        mbr: &Aabb,
        object_id: u64,
        is_root: bool,
        orphans: &mut Vec<(Aabb, u64)>,
        orphan_subtrees: &mut Vec<Entry>,
    ) -> Result<bool> {
        let mut node = self.read_node(page)?;
        if node.is_leaf {
            let before = node.entries.len();
            node.entries
                .retain(|e| !(e.child == ChildRef::Object(object_id) && e.mbr == *mbr));
            if node.entries.len() == before {
                return Ok(false);
            }
            if !is_root && node.entries.len() < self.min_entries {
                // Dissolve this leaf: orphan the survivors.
                for e in node.entries.drain(..) {
                    if let ChildRef::Object(id) = e.child {
                        orphans.push((e.mbr, id));
                    }
                }
            }
            self.write_node(page, &node)?;
            return Ok(true);
        }
        for i in 0..node.entries.len() {
            if !node.entries[i].mbr.contains(mbr) {
                continue;
            }
            let child_page = node.entries[i]
                .child
                .as_node()
                .expect("internal entry must reference a node");
            if self.delete_rec(child_page, mbr, object_id, false, orphans, orphan_subtrees)? {
                let child = self.read_node(child_page)?;
                if child.entries.is_empty()
                    || (!child.is_leaf && child.entries.len() < self.min_entries)
                {
                    // Remove the child entry; orphan any remaining subtrees.
                    for e in child.entries {
                        orphan_subtrees.push(e);
                    }
                    node.entries.remove(i);
                    self.node_count -= 1;
                } else {
                    node.entries[i].mbr = child.mbr();
                }
                if !is_root && node.entries.len() < self.min_entries {
                    for e in node.entries.drain(..) {
                        orphan_subtrees.push(e);
                    }
                }
                self.write_node(page, &node)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Returns all `(object_id, mbr)` whose MBR intersects `query`.
    pub fn window_query(&mut self, query: &Aabb) -> Result<Vec<(u64, Aabb)>> {
        let mut out = Vec::new();
        self.window_query_with(query, &mut |id, mbr| out.push((id, mbr)))?;
        Ok(out)
    }

    /// Visitor-style window query.
    pub fn window_query_with(
        &mut self,
        query: &Aabb,
        visit: &mut dyn FnMut(u64, Aabb),
    ) -> Result<()> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            for e in &node.entries {
                if !e.mbr.intersects(query) {
                    continue;
                }
                match e.child {
                    ChildRef::Object(id) => visit(id, e.mbr),
                    ChildRef::Node(child) => stack.push(child),
                }
            }
        }
        Ok(())
    }

    /// Returns the `k` objects whose MBRs are nearest to `p` (best-first
    /// distance browsing, Hjaltason–Samet): ties broken by object id for
    /// determinism. Fewer than `k` results when the tree is smaller.
    ///
    /// Distance is the point-to-box distance (0 when `p` is inside).
    pub fn nearest(&mut self, p: Vec3, k: usize) -> Result<Vec<(u64, f64)>> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Item {
            dist: f64,
            tie: u64,
            node: Option<PageId>, // None = object payload in `tie`
        }
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist && self.tie == other.tie
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on (dist, tie).
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.tie.cmp(&self.tie))
            }
        }

        if k == 0 {
            return Ok(Vec::new());
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist: 0.0,
            tie: 0,
            node: Some(self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match item.node {
                None => {
                    out.push((item.tie, item.dist));
                    if out.len() == k {
                        break;
                    }
                }
                Some(page) => {
                    let node = self.read_node(page)?;
                    for e in &node.entries {
                        let dist = e.mbr.distance_to_point(p);
                        match e.child {
                            ChildRef::Object(id) => heap.push(Item {
                                dist,
                                tie: id,
                                node: None,
                            }),
                            ChildRef::Node(child) => heap.push(Item {
                                dist,
                                tie: child.0,
                                node: Some(child),
                            }),
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Returns all objects whose MBR contains the point `p`.
    pub fn point_query(&mut self, p: Vec3) -> Result<Vec<u64>> {
        let q = Aabb::new(p, p);
        Ok(self
            .window_query(&q)?
            .into_iter()
            .map(|(id, _)| id)
            .collect())
    }

    /// Depth-first walk over all nodes: `visit(page, node, level)` with
    /// level 0 at the root. Children are visited in entry order.
    pub fn visit_structure(&mut self, visit: &mut dyn FnMut(PageId, &Node, u32)) -> Result<()> {
        let mut stack = vec![(self.root, 0u32)];
        while let Some((page, level)) = stack.pop() {
            let node = self.read_node(page)?;
            visit(page, &node, level);
            if !node.is_leaf {
                for e in node.entries.iter().rev() {
                    if let ChildRef::Node(child) = e.child {
                        stack.push((child, level + 1));
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies structural invariants (used by tests):
    /// parent MBR contains child MBRs exactly; fill bounds; uniform leaf
    /// depth; object count. Panics with a message on violation.
    pub fn validate(&mut self) -> Result<()> {
        let root = self.root;
        let height = self.height;
        let mut objects = 0u64;
        let mut nodes = 0u64;
        self.validate_rec(root, 1, height, true, &mut objects, &mut nodes)?;
        assert_eq!(objects, self.object_count, "object count mismatch");
        assert_eq!(nodes, self.node_count, "node count mismatch");
        Ok(())
    }

    fn validate_rec(
        &mut self,
        page: PageId,
        depth: u32,
        height: u32,
        is_root: bool,
        objects: &mut u64,
        nodes: &mut u64,
    ) -> Result<Aabb> {
        let node = self.read_node(page)?;
        *nodes += 1;
        if node.is_leaf {
            assert_eq!(
                depth, height,
                "leaf at wrong depth {depth} (height {height})"
            );
        }
        if !is_root && self.object_count > 0 {
            assert!(
                node.entries.len() >= self.min_entries.min(2),
                "underfull node: {} entries",
                node.entries.len()
            );
        }
        assert!(node.entries.len() <= self.max_entries, "overfull node");
        for e in &node.entries {
            match e.child {
                ChildRef::Object(_) => {
                    assert!(node.is_leaf, "object entry in internal node");
                    *objects += 1;
                }
                ChildRef::Node(child) => {
                    assert!(!node.is_leaf, "node entry in leaf");
                    let child_mbr =
                        self.validate_rec(child, depth + 1, height, false, objects, nodes)?;
                    assert!(
                        e.mbr.inflate(1e-9).contains(&child_mbr),
                        "parent entry MBR does not contain child"
                    );
                }
            }
        }
        Ok(node.mbr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_storage::MemPagedFile;

    fn boxes(n: usize, seed: u64) -> Vec<(Aabb, u64)> {
        // Deterministic pseudo-random boxes in [0, 1000)^3.
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) * 1000.0
        };
        (0..n)
            .map(|i| {
                let p = Vec3::new(next(), next(), next());
                (
                    Aabb::new(p, p + Vec3::splat(1.0 + next() / 100.0)),
                    i as u64,
                )
            })
            .collect()
    }

    fn build(n: usize, method: SplitMethod) -> RTree<MemPagedFile> {
        let mut t = RTree::new(MemPagedFile::new(), method).unwrap();
        for (mbr, id) in boxes(n, 42) {
            t.insert(mbr, id).unwrap();
        }
        t
    }

    #[test]
    fn empty_tree_queries() {
        let mut t = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
        let everything = Aabb::new(Vec3::splat(-1e9), Vec3::splat(1e9));
        assert!(t.window_query(&everything).unwrap().is_empty());
        assert_eq!(t.stats().object_count, 0);
        t.validate().unwrap();
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = build(10, SplitMethod::AngTanLinear);
        let everything = Aabb::new(Vec3::splat(-1e9), Vec3::splat(1e9));
        assert_eq!(t.window_query(&everything).unwrap().len(), 10);
        t.validate().unwrap();
    }

    #[test]
    fn grows_beyond_one_node_and_validates() {
        for method in [SplitMethod::AngTanLinear, SplitMethod::GuttmanQuadratic] {
            let mut t = build(1000, method);
            assert!(t.stats().height >= 2, "{method:?} never split");
            assert!(t.stats().node_count > 1);
            t.validate().unwrap();
        }
    }

    #[test]
    fn window_query_matches_brute_force() {
        let items = boxes(800, 7);
        let mut t = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
        for (mbr, id) in &items {
            t.insert(*mbr, *id).unwrap();
        }
        for (qi, q) in [
            Aabb::new(Vec3::splat(0.0), Vec3::splat(100.0)),
            Aabb::new(Vec3::new(500.0, 0.0, 0.0), Vec3::new(700.0, 1000.0, 1000.0)),
            Aabb::new(Vec3::splat(999.0), Vec3::splat(1000.0)),
        ]
        .iter()
        .enumerate()
        {
            let mut got: Vec<u64> = t
                .window_query(q)
                .unwrap()
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            let mut expect: Vec<u64> = items
                .iter()
                .filter(|(mbr, _)| mbr.intersects(q))
                .map(|&(_, id)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "query {qi} diverged");
        }
    }

    #[test]
    fn point_query_finds_containing_boxes() {
        let mut t = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
        t.insert(Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), 1)
            .unwrap();
        t.insert(Aabb::new(Vec3::splat(5.0), Vec3::splat(15.0)), 2)
            .unwrap();
        let mut hits = t.point_query(Vec3::splat(7.0)).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(t.point_query(Vec3::splat(20.0)).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn visit_structure_covers_all_nodes() {
        let mut t = build(500, SplitMethod::AngTanLinear);
        let mut count = 0u64;
        let mut leaf_objects = 0usize;
        let mut max_level = 0;
        t.visit_structure(&mut |_, node, level| {
            count += 1;
            max_level = max_level.max(level);
            if node.is_leaf {
                leaf_objects += node.entries.len();
            }
        })
        .unwrap();
        assert_eq!(count, t.stats().node_count);
        assert_eq!(leaf_objects as u64, t.stats().object_count);
        assert_eq!(max_level + 1, t.stats().height);
    }

    #[test]
    fn capped_fanout_gives_deeper_tree() {
        let mut small =
            RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 8).unwrap();
        let mut big = RTree::new(MemPagedFile::new(), SplitMethod::AngTanLinear).unwrap();
        for (mbr, id) in boxes(400, 11) {
            small.insert(mbr, id).unwrap();
            big.insert(mbr, id).unwrap();
        }
        small.validate().unwrap();
        big.validate().unwrap();
        assert!(small.stats().height > big.stats().height);
        assert_eq!(small.max_entries(), 8);
        // Queries still agree.
        let q = Aabb::new(Vec3::splat(100.0), Vec3::splat(400.0));
        let mut a: Vec<u64> = small
            .window_query(&q)
            .unwrap()
            .iter()
            .map(|x| x.0)
            .collect();
        let mut b: Vec<u64> = big.window_query(&q).unwrap().iter().map(|x| x.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn tiny_fanout_rejected() {
        let _ = RTree::with_fanout(MemPagedFile::new(), SplitMethod::AngTanLinear, 3);
    }

    #[test]
    fn io_is_metered_through_simulated_disk() {
        use hdov_storage::{DiskModel, SimulatedDisk};
        let disk = SimulatedDisk::new(MemPagedFile::new(), DiskModel::FREE);
        let mut t = RTree::new(disk, SplitMethod::AngTanLinear).unwrap();
        for (mbr, id) in boxes(300, 3) {
            t.insert(mbr, id).unwrap();
        }
        t.file_mut().reset_stats();
        let q = Aabb::new(Vec3::splat(0.0), Vec3::splat(200.0));
        let _ = t.window_query(&q).unwrap();
        let reads = t.file().stats().page_reads;
        assert!(reads >= 1);
        assert!(reads <= t.stats().node_count);
    }
}
