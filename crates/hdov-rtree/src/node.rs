//! On-page R-tree node layout.

use crate::entry::{Entry, ENTRY_BYTES};
use hdov_geom::Aabb;
use hdov_storage::codec::{ByteReader, ByteWriter};
use hdov_storage::{Page, Result, StorageError, PAGE_SIZE};

/// Node header: magic (2) + is_leaf (1) + pad (1) + count (2) + pad (2).
const HEADER_BYTES: usize = 8;
const MAGIC: u16 = 0x4D52; // "RM"

/// Maximum entries per node (`M`): as many as fit in one page.
pub const MAX_ENTRIES: usize = (PAGE_SIZE - HEADER_BYTES) / ENTRY_BYTES;

/// Minimum entries per non-root node (`m = 40% of M`, Guttman's default).
pub const MIN_ENTRIES: usize = (MAX_ENTRIES * 2) / 5;

/// An in-memory R-tree node, (de)serializable to a single page.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// True for leaf nodes (entries reference objects).
    pub is_leaf: bool,
    /// The node's entries.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node.
    pub fn new(is_leaf: bool) -> Self {
        Node {
            is_leaf,
            entries: Vec::new(),
        }
    }

    /// MBR covering all entries.
    pub fn mbr(&self) -> Aabb {
        self.entries
            .iter()
            .fold(Aabb::EMPTY, |acc, e| acc.union(&e.mbr))
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= MAX_ENTRIES
    }

    /// Serializes into a fresh page.
    ///
    /// # Panics
    /// Panics if the node has more than [`MAX_ENTRIES`] entries (an internal
    /// invariant violation, not a recoverable condition).
    pub fn encode(&self) -> Page {
        assert!(self.entries.len() <= MAX_ENTRIES, "node overflow");
        let mut w = ByteWriter::with_capacity(PAGE_SIZE);
        w.put_u16(MAGIC);
        w.put_u8(self.is_leaf as u8);
        w.put_u8(0);
        w.put_u16(self.entries.len() as u16);
        w.put_u16(0);
        for e in &self.entries {
            e.encode(&mut w);
        }
        Page::from_bytes(w.bytes())
    }

    /// Deserializes a node from a page.
    pub fn decode(page: &Page) -> Result<Self> {
        let mut r = ByteReader::new(page.bytes());
        let magic = r.get_u16()?;
        if magic != MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad R-tree node magic {magic:#06x}"
            )));
        }
        let is_leaf = r.get_u8()? != 0;
        let _ = r.get_u8()?;
        let count = r.get_u16()? as usize;
        let _ = r.get_u16()?;
        if count > MAX_ENTRIES {
            return Err(StorageError::Corrupt(format!(
                "node entry count {count} exceeds capacity {MAX_ENTRIES}"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(Entry::decode(&mut r, is_leaf)?);
        }
        Ok(Node { is_leaf, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ChildRef;
    use hdov_geom::Vec3;
    use hdov_storage::PageId;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn capacity_constants_sane() {
        assert!(MAX_ENTRIES >= 50, "fan-out too small: {MAX_ENTRIES}");
        assert!(MIN_ENTRIES >= 2);
        assert!(MIN_ENTRIES <= MAX_ENTRIES / 2);
        assert!(HEADER_BYTES + MAX_ENTRIES * ENTRY_BYTES <= PAGE_SIZE);
    }

    fn sample_node(is_leaf: bool, n: usize) -> Node {
        let mut node = Node::new(is_leaf);
        for i in 0..n {
            let f = i as f64;
            let mbr = Aabb::new(Vec3::splat(f), Vec3::splat(f + 1.0));
            node.entries.push(if is_leaf {
                Entry::object(mbr, i as u64)
            } else {
                Entry::node(mbr, PageId(i as u64 + 100))
            });
        }
        node
    }

    #[test]
    fn round_trip_leaf_and_internal() {
        for is_leaf in [true, false] {
            let node = sample_node(is_leaf, 17);
            let page = node.encode();
            let decoded = Node::decode(&page).unwrap();
            assert_eq!(decoded, node);
        }
    }

    #[test]
    fn round_trip_full_node() {
        let node = sample_node(true, MAX_ENTRIES);
        assert!(node.is_full());
        let decoded = Node::decode(&node.encode()).unwrap();
        assert_eq!(decoded.entries.len(), MAX_ENTRIES);
    }

    #[test]
    fn mbr_unions_entries() {
        let node = sample_node(true, 3);
        let mbr = node.mbr();
        assert_eq!(mbr.min, Vec3::splat(0.0));
        assert_eq!(mbr.max, Vec3::splat(3.0));
        assert!(Node::new(true).mbr().is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let page = Page::from_bytes(&[0xFF; 64]);
        assert!(Node::decode(&page).is_err());
    }

    #[test]
    fn child_kind_follows_leaf_flag() {
        let leaf = sample_node(true, 1);
        let d = Node::decode(&leaf.encode()).unwrap();
        assert!(matches!(d.entries[0].child, ChildRef::Object(0)));
        let internal = sample_node(false, 1);
        let d = Node::decode(&internal.encode()).unwrap();
        assert!(matches!(d.entries[0].child, ChildRef::Node(PageId(100))));
    }
}
