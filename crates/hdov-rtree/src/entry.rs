//! R-tree entries: an MBR plus a reference to a child node or an object.

use hdov_geom::{Aabb, Vec3};
use hdov_storage::codec::{ByteReader, ByteWriter};
use hdov_storage::{PageId, Result};

/// What an entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// A child node (internal entries).
    Node(PageId),
    /// A stored object id (leaf entries).
    Object(u64),
}

impl ChildRef {
    /// The raw 64-bit payload.
    #[inline]
    pub fn raw(self) -> u64 {
        match self {
            ChildRef::Node(p) => p.0,
            ChildRef::Object(o) => o,
        }
    }

    /// The child page, if this is a node reference.
    #[inline]
    pub fn as_node(self) -> Option<PageId> {
        match self {
            ChildRef::Node(p) => Some(p),
            ChildRef::Object(_) => None,
        }
    }

    /// The object id, if this is an object reference.
    #[inline]
    pub fn as_object(self) -> Option<u64> {
        match self {
            ChildRef::Object(o) => Some(o),
            ChildRef::Node(_) => None,
        }
    }
}

/// One R-tree entry: `(MBR, Ptr)` in the paper's notation (the view-variant
/// `VD` lives in V-pages, not in the spatial backbone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Minimum bounding box of everything below this entry.
    pub mbr: Aabb,
    /// Child node or object reference.
    pub child: ChildRef,
}

/// Serialized size of one entry: 6 × f64 MBR + u64 payload.
pub const ENTRY_BYTES: usize = 48 + 8;

impl Entry {
    /// Creates a leaf entry for an object.
    pub fn object(mbr: Aabb, id: u64) -> Self {
        Entry {
            mbr,
            child: ChildRef::Object(id),
        }
    }

    /// Creates an internal entry for a child node.
    pub fn node(mbr: Aabb, page: PageId) -> Self {
        Entry {
            mbr,
            child: ChildRef::Node(page),
        }
    }

    /// Encodes the entry. `is_leaf` of the containing node determines how the
    /// payload is interpreted at decode time.
    pub fn encode(&self, w: &mut ByteWriter) {
        for v in [self.mbr.min, self.mbr.max] {
            w.put_f64(v.x);
            w.put_f64(v.y);
            w.put_f64(v.z);
        }
        w.put_u64(self.child.raw());
    }

    /// Decodes an entry written by [`encode`](Self::encode).
    pub fn decode(r: &mut ByteReader<'_>, is_leaf: bool) -> Result<Self> {
        let min = Vec3::new(r.get_f64()?, r.get_f64()?, r.get_f64()?);
        let max = Vec3::new(r.get_f64()?, r.get_f64()?, r.get_f64()?);
        let raw = r.get_u64()?;
        let child = if is_leaf {
            ChildRef::Object(raw)
        } else {
            ChildRef::Node(PageId(raw))
        };
        Ok(Entry {
            mbr: Aabb { min, max },
            child,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ref_accessors() {
        let n = ChildRef::Node(PageId(7));
        let o = ChildRef::Object(9);
        assert_eq!(n.as_node(), Some(PageId(7)));
        assert_eq!(n.as_object(), None);
        assert_eq!(o.as_object(), Some(9));
        assert_eq!(o.as_node(), None);
        assert_eq!(n.raw(), 7);
        assert_eq!(o.raw(), 9);
    }

    #[test]
    fn entry_round_trip() {
        let mbr = Aabb::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        for (e, is_leaf) in [
            (Entry::object(mbr, 42), true),
            (Entry::node(mbr, PageId(13)), false),
        ] {
            let mut w = ByteWriter::new();
            e.encode(&mut w);
            assert_eq!(w.len(), ENTRY_BYTES);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let d = Entry::decode(&mut r, is_leaf).unwrap();
            assert_eq!(d, e);
        }
    }

    #[test]
    fn decode_truncated_fails() {
        let mut r = ByteReader::new(&[0u8; 10]);
        assert!(Entry::decode(&mut r, true).is_err());
    }
}
