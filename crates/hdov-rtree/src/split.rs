//! Node splitting algorithms.
//!
//! The paper uses the **Ang–Tan linear split** (SSD'97), chosen to minimize
//! bounding-box overlap at linear cost; Guttman's quadratic split is provided
//! as the classical baseline for ablation benches.

use crate::entry::Entry;
use hdov_geom::Aabb;

/// Which split algorithm an [`RTree`](crate::RTree) uses on node overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMethod {
    /// Ang & Tan's linear split (the paper's choice).
    #[default]
    AngTanLinear,
    /// Guttman's quadratic split.
    GuttmanQuadratic,
}

impl SplitMethod {
    /// Splits `entries` (length ≥ 2) into two non-empty groups, each with at
    /// least `min_fill` entries (when `entries.len() >= 2 * min_fill`).
    pub fn split(self, entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
        assert!(entries.len() >= 2, "cannot split fewer than two entries");
        match self {
            SplitMethod::AngTanLinear => ang_tan_split(entries, min_fill),
            SplitMethod::GuttmanQuadratic => quadratic_split(entries, min_fill),
        }
    }
}

fn group_mbr(entries: &[Entry]) -> Aabb {
    entries.iter().fold(Aabb::EMPTY, |a, e| a.union(&e.mbr))
}

fn overlap_volume(a: &Aabb, b: &Aabb) -> f64 {
    let i = a.intersection(b);
    if i.is_empty() {
        0.0
    } else {
        i.volume()
    }
}

/// Ang–Tan linear split.
///
/// For each axis, every rectangle is assigned to the group whose side of the
/// node MBR it is nearer to. The axis with the most balanced distribution
/// wins; ties break on smaller group-MBR overlap, then on smaller total
/// coverage. A rebalancing pass enforces `min_fill`.
fn ang_tan_split(entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
    let bounds = group_mbr(&entries);
    let mut best: Option<(usize, f64, f64, Vec<bool>)> = None; // (imbalance, overlap, coverage, assignment)

    for axis in 0..3 {
        let lo = bounds.min[axis];
        let hi = bounds.max[axis];
        // to_left[i] = rectangle i is nearer the low side.
        let to_left: Vec<bool> = entries
            .iter()
            .map(|e| (e.mbr.min[axis] - lo) < (hi - e.mbr.max[axis]))
            .collect();
        let left_count = to_left.iter().filter(|&&b| b).count();
        let right_count = entries.len() - left_count;
        if left_count == 0 || right_count == 0 {
            continue;
        }
        let imbalance = left_count.abs_diff(right_count);
        let (l_mbr, r_mbr) = {
            let mut l = Aabb::EMPTY;
            let mut r = Aabb::EMPTY;
            for (e, &left) in entries.iter().zip(&to_left) {
                if left {
                    l = l.union(&e.mbr);
                } else {
                    r = r.union(&e.mbr);
                }
            }
            (l, r)
        };
        let overlap = overlap_volume(&l_mbr, &r_mbr);
        let coverage = l_mbr.volume() + r_mbr.volume();
        let better = match &best {
            None => true,
            Some((bi, bo, bc, _)) => {
                imbalance < *bi
                    || (imbalance == *bi && overlap < *bo)
                    || (imbalance == *bi && overlap == *bo && coverage < *bc)
            }
        };
        if better {
            best = Some((imbalance, overlap, coverage, to_left));
        }
    }

    let assignment = match best {
        Some((_, _, _, a)) => a,
        // Degenerate: all rectangles identical on every axis — alternate.
        None => (0..entries.len()).map(|i| i % 2 == 0).collect(),
    };

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (e, keep_left) in entries.into_iter().zip(assignment) {
        if keep_left {
            left.push(e);
        } else {
            right.push(e);
        }
    }
    rebalance(&mut left, &mut right, min_fill);
    (left, right)
}

/// Guttman's quadratic split: seed with the pair wasting the most area, then
/// greedily assign by preference (enlargement difference).
fn quadratic_split(mut entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
    // Pick seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].mbr.union(&entries[j].mbr).volume()
                - entries[i].mbr.volume()
                - entries[j].mbr.volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the later index first so the earlier stays valid.
    let (a, b) = (s1.min(s2), s1.max(s2));
    let seed2 = entries.remove(b);
    let seed1 = entries.remove(a);
    let mut left = vec![seed1];
    let mut right = vec![seed2];
    let mut l_mbr = left[0].mbr;
    let mut r_mbr = right[0].mbr;

    while let Some(e) = pick_next(&entries, &l_mbr, &r_mbr) {
        let e = entries.remove(e);
        // Force assignment when one side must absorb the remainder to make
        // min_fill.
        let remaining = entries.len() + 1;
        let to_left = if left.len() + remaining <= min_fill {
            true
        } else if right.len() + remaining <= min_fill {
            false
        } else {
            let dl = l_mbr.enlargement(&e.mbr);
            let dr = r_mbr.enlargement(&e.mbr);
            dl < dr || (dl == dr && l_mbr.volume() < r_mbr.volume())
        };
        if to_left {
            l_mbr = l_mbr.union(&e.mbr);
            left.push(e);
        } else {
            r_mbr = r_mbr.union(&e.mbr);
            right.push(e);
        }
    }
    rebalance(&mut left, &mut right, min_fill);
    (left, right)
}

/// Index of the remaining entry with the strongest group preference.
fn pick_next(entries: &[Entry], l: &Aabb, r: &Aabb) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            let pa = (l.enlargement(&a.mbr) - r.enlargement(&a.mbr)).abs();
            let pb = (l.enlargement(&b.mbr) - r.enlargement(&b.mbr)).abs();
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// Moves entries from the larger group to the smaller until both meet
/// `min_fill` (movable entries chosen to least enlarge the receiving group).
fn rebalance(left: &mut Vec<Entry>, right: &mut Vec<Entry>, min_fill: usize) {
    let total = left.len() + right.len();
    let min_fill = min_fill.min(total / 2);
    loop {
        let (small, big) = if left.len() < right.len() {
            (&mut *left, &mut *right)
        } else {
            (&mut *right, &mut *left)
        };
        if small.len() >= min_fill {
            break;
        }
        let small_mbr = group_mbr(small);
        let (idx, _) = big
            .iter()
            .enumerate()
            .map(|(i, e)| (i, small_mbr.enlargement(&e.mbr)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("big group cannot be empty while small is under-filled");
        let e = big.remove(idx);
        small.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdov_geom::Vec3;

    fn entry_at(x: f64, y: f64, id: u64) -> Entry {
        Entry::object(
            Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 1.0, y + 1.0, 1.0)),
            id,
        )
    }

    fn two_clusters() -> Vec<Entry> {
        let mut v = Vec::new();
        for i in 0..6 {
            v.push(entry_at(i as f64 * 0.1, 0.0, i));
        }
        for i in 0..6 {
            v.push(entry_at(100.0 + i as f64 * 0.1, 0.0, 100 + i));
        }
        v
    }

    #[test]
    fn ang_tan_separates_clusters() {
        let (l, r) = SplitMethod::AngTanLinear.split(two_clusters(), 3);
        assert_eq!(l.len() + r.len(), 12);
        assert!(l.len() >= 3 && r.len() >= 3);
        // The groups should be the spatial clusters (either order).
        let lx = group_mbr(&l);
        let rx = group_mbr(&r);
        assert_eq!(overlap_volume(&lx, &rx), 0.0);
    }

    #[test]
    fn quadratic_separates_clusters() {
        let (l, r) = SplitMethod::GuttmanQuadratic.split(two_clusters(), 3);
        assert!(l.len() >= 3 && r.len() >= 3);
        let lx = group_mbr(&l);
        let rx = group_mbr(&r);
        assert_eq!(overlap_volume(&lx, &rx), 0.0);
    }

    #[test]
    fn min_fill_enforced_on_skewed_input() {
        // 11 entries clustered + 1 outlier: naive assignment would give 1.
        let mut v: Vec<Entry> = (0..11).map(|i| entry_at(i as f64 * 0.01, 0.0, i)).collect();
        v.push(entry_at(1000.0, 0.0, 99));
        for method in [SplitMethod::AngTanLinear, SplitMethod::GuttmanQuadratic] {
            let (l, r) = method.split(v.clone(), 4);
            assert!(l.len() >= 4, "{method:?}: left {}", l.len());
            assert!(r.len() >= 4, "{method:?}: right {}", r.len());
            assert_eq!(l.len() + r.len(), 12);
        }
    }

    #[test]
    fn identical_rectangles_still_split() {
        let v: Vec<Entry> = (0..10).map(|i| entry_at(5.0, 5.0, i)).collect();
        for method in [SplitMethod::AngTanLinear, SplitMethod::GuttmanQuadratic] {
            let (l, r) = method.split(v.clone(), 4);
            assert!(!l.is_empty() && !r.is_empty());
            assert_eq!(l.len() + r.len(), 10);
            assert!(l.len() >= 4 && r.len() >= 4);
        }
    }

    #[test]
    fn two_entries_split_one_each() {
        let v = vec![entry_at(0.0, 0.0, 1), entry_at(10.0, 0.0, 2)];
        for method in [SplitMethod::AngTanLinear, SplitMethod::GuttmanQuadratic] {
            let (l, r) = method.split(v.clone(), 1);
            assert_eq!(l.len(), 1);
            assert_eq!(r.len(), 1);
        }
    }

    #[test]
    #[should_panic]
    fn single_entry_split_panics() {
        let _ = SplitMethod::AngTanLinear.split(vec![entry_at(0.0, 0.0, 1)], 1);
    }
}
