//! Fault-tolerant walkthrough: replay a session while the disks misbehave.
//!
//! Arms every file of a shared HDoV-tree deployment with a seeded
//! [`FaultPlan`] — transient read errors, latency spikes, and one
//! bit-flipped page — then walks a recorded session frame by frame.
//! Transient errors are retried with exponential backoff; reads that stay
//! unreadable degrade to the deepest readable ancestor's internal LoD, and
//! every absorbed error is visible in the frame's [`DegradeReport`].
//!
//! ```sh
//! cargo run --release --example degraded_walkthrough
//! ```
//!
//! [`DegradeReport`]: hdov::core::DegradeReport

use hdov::core::{DeltaSearch, PoolConfig};
use hdov::prelude::*;
use hdov::storage::{FaultPlan, RetryPolicy};
use hdov::walkthrough::{ServerConfig, Session, SessionKind, SessionServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::tiny().seed(21).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    let env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;
    let shared = env.into_shared(PoolConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 100.0,
            max_backoff_us: 5_000.0,
        },
        ..PoolConfig::default()
    });

    // A hostile but deterministic disk: a quarter of raw reads fail
    // transiently (retry usually saves them), 10% take a 2 ms latency
    // spike, and disk page 17 always comes back bit-flipped (the checksum
    // gate rejects it on every attempt), so cells whose data touches that
    // page degrade while the rest of the walk stays at full detail.
    let plan = FaultPlan {
        transient_fail_rate: 0.25,
        latency_spike_rate: 0.10,
        latency_spike_us: 2_000.0,
        corrupt_pages: vec![17],
        corruption_mask: 0xA5,
        seed: 0xBADD15C,
        ..FaultPlan::default()
    };
    let injectors = shared.arm_faults(&plan);

    // Walk one recorded session frame by frame, reporting degradation.
    let session = Session::record(scene.viewpoint_region(), SessionKind::Normal, 60, 5);
    let mut ctx = shared.session();
    let mut delta = DeltaSearch::new();
    let (mut degraded, mut failed, mut fallbacks, mut coarse) = (0u64, 0u64, 0u64, 0u64);
    println!("frame  entries  polygons  degradation");
    for (i, &vp) in session.viewpoints.iter().enumerate() {
        match shared.query_delta(&mut ctx, vp, 0.002, &mut delta) {
            Ok((r, _, _)) => {
                let d = r.degrade();
                if d.is_degraded() {
                    degraded += 1;
                    fallbacks += d.lod_fallbacks();
                    coarse += d.objects_coarse();
                    println!(
                        "{i:>5}  {:>7}  {:>8}  {} LoD fallback(s), {} object(s) coarse; first: {}",
                        r.entries().len(),
                        r.total_polygons(),
                        d.lod_fallbacks(),
                        d.objects_coarse(),
                        d.events()[0].error,
                    );
                } else {
                    println!(
                        "{i:>5}  {:>7}  {:>8}  -",
                        r.entries().len(),
                        r.total_polygons()
                    );
                }
            }
            Err(e) => {
                failed += 1;
                println!("{i:>5}        -         -  frame dropped: {e}");
            }
        }
    }
    let (reads, injected): (u64, u64) = injectors
        .iter()
        .map(|f| (f.reads(), f.injected()))
        .fold((0, 0), |(r, i), (a, b)| (r + a, i + b));
    println!(
        "\nsession: {degraded} degraded frame(s), {failed} dropped, \
         {fallbacks} internal-LoD fallback(s) covering {coarse} object(s)"
    );
    println!("disks: {injected} fault(s) injected across {reads} raw read attempt(s)");

    // The same chaos against the concurrent session server: each visitor's
    // failures stay their own.
    let sessions: Vec<Session> = (0..4)
        .map(|s| Session::record(scene.viewpoint_region(), SessionKind::Normal, 40, 11 + s))
        .collect();
    let server = SessionServer::new(&shared, ServerConfig::default());
    let report = server.run(&sessions, 4)?;
    // Most pages are already pool-resident (verified at admission), so the
    // server's visitors see few raw reads — and only raw reads can fault.
    println!("\nconcurrent server, 4 sessions on 4 threads under the same fault plan:");
    for o in &report.sessions {
        println!(
            "  session {}: {} frames ok, {} degraded, {} dropped, {} page reads",
            o.session,
            o.search_ms.len() as u64 - o.degraded_frames,
            o.degraded_frames,
            o.failed_frames,
            o.page_reads,
        );
    }

    for f in &injectors {
        f.disarm();
    }
    Ok(())
}
