//! Progressive, frame-budgeted loading with the frustum-prioritized
//! traversal — the paper's §3.2 "third advantage", implemented as stated
//! future work.
//!
//! A real walkthrough has a frame deadline. The prioritized search loads
//! what the camera is looking at first, so when the budget expires the
//! frame already contains the visually important content; the rest streams
//! in over the following frames (delta search makes those cheap).
//!
//! ```sh
//! cargo run --release --example progressive_loading
//! ```

use hdov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::small().seed(5).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let mut env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;

    // A camera standing on a street, looking along +x.
    let eye = scene.viewpoint_region().center();
    let frustum = Frustum::new(eye, Vec3::X, Vec3::Z, 1.2, 1.6, 0.5, 2000.0);
    let eta = 0.001;

    // Reference: the complete prioritized answer.
    let (full, _) = env.query_prioritized(&frustum, eta, None)?;
    let total_entries = full.result.entries().len();
    let total_dov = full.result.captured_dov();
    println!(
        "full answer: {} entries, {:.4} DoV mass, {:.1} ms simulated\n",
        total_entries, total_dov, full.spent_ms
    );

    println!(
        "{:>12} {:>10} {:>12} {:>14} {:>10}",
        "budget (ms)", "entries", "DoV mass", "% of DoV", "complete"
    );
    for fraction in [0.1, 0.25, 0.5, 0.75, 1.0, 2.0] {
        let budget = full.spent_ms * fraction;
        let (partial, _) = env.query_prioritized(&frustum, eta, Some(budget))?;
        let dov = partial.result.captured_dov();
        println!(
            "{:>12.1} {:>10} {:>12.4} {:>13.1}% {:>10}",
            budget,
            partial.result.entries().len(),
            dov,
            100.0 * dov / total_dov.max(1e-12),
            partial.completed,
        );
    }
    println!(
        "\nthe first slice of budget pays the fixed tree/V-page overhead; after \
         that, in-frustum near-first content streams in DoV-dense order — half \
         the full budget already captures most of the visible solid angle"
    );
    Ok(())
}
