//! Compare the three on-disk storage schemes for the view-variant data:
//! footprint (paper Table 2) and per-query V-page I/O (paper Fig. 7).
//!
//! ```sh
//! cargo run --release --example storage_schemes
//! ```

use hdov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::small().seed(3).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let viewpoints: Vec<_> = (0..6)
        .map(|i| {
            let r = scene.viewpoint_region();
            r.min.lerp(r.max, 0.1 + 0.15 * i as f64)
        })
        .collect();

    println!(
        "{:<18} {:>12} {:>16} {:>16}",
        "scheme", "storage", "v-page I/Os*", "v-store time*"
    );
    for scheme in StorageScheme::all() {
        let mut env = HdovEnvironment::build(&scene, &cells, HdovBuildConfig::default(), scheme)?;
        let mut reads = 0u64;
        let mut us = 0.0;
        for &vp in &viewpoints {
            let (_, stats) = env.query_with_stats(vp, 0.001)?;
            reads += stats.vstore_io.page_reads;
            us += stats.vstore_io.elapsed_us;
        }
        println!(
            "{:<18} {:>12} {:>16} {:>13.2}ms",
            scheme.to_string(),
            format!("{} B", env.vstore().storage_bytes()),
            reads,
            us / 1000.0,
        );
    }
    println!(
        "* summed over {} queries crossing several cells",
        viewpoints.len()
    );
    println!(
        "\npaper: horizontal is ~20x larger (Table 2) and slowest (Fig. 7); \
         indexed-vertical is smallest and fastest"
    );
    Ok(())
}
