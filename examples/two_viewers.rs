//! Multiple independent viewers over one shared, precomputed project — the
//! multi-client deployment the paper's server-side framing implies.
//!
//! The offline artifacts (scene recipe + DoV table) are computed once and
//! shared; each viewer thread owns its environment (its own simulated disk
//! head and resident set) and walks a different session concurrently.
//!
//! ```sh
//! cargo run --release --example two_viewers
//! ```

use hdov::prelude::*;
use hdov::project::Project;
use hdov::visibility::DovConfig;
use hdov::walkthrough::{run_session, FrameModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline, once: precompute and "publish" the project.
    let project = Project::create(
        CityConfig::small().seed(14),
        (8, 8),
        &DovConfig::default(),
        0,
    );
    println!(
        "project: {} cells precomputed over {} objects",
        project.table.cell_count(),
        project.scene().len()
    );

    // Online: each viewer builds its environment from the shared project and
    // runs on its own thread.
    let handles: Vec<_> = [
        (SessionKind::Normal, 0.001, 21u64),
        (SessionKind::Turning, 0.004, 22),
        (SessionKind::BackForth, 0.0005, 23),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (kind, eta, seed))| {
        let project = project.clone();
        std::thread::spawn(move || -> Result<String, hdov::storage::StorageError> {
            let scene = project.scene();
            let env =
                project.environment(HdovBuildConfig::default(), StorageScheme::IndexedVertical)?;
            let mut visual = VisualSystem::new(env, eta)?;
            let session = Session::record(scene.viewpoint_region(), kind, 80, seed);
            let m = run_session(&mut visual, &session, &FrameModel::PAPER_ERA)?;
            Ok(format!(
                "viewer {i} [{}] eta={eta}: avg {:.1} ms, coverage {:.3}, peak {} KB",
                kind.label(),
                m.avg_frame_time_ms(),
                m.avg_dov_coverage(),
                m.peak_memory_bytes / 1024
            ))
        })
    })
    .collect();

    for h in handles {
        println!("{}", h.join().expect("viewer thread panicked")?);
    }
    Ok(())
}
