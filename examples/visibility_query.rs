//! Inspect degree-of-visibility (DoV) values directly: what does a street
//! viewpoint actually see, and how does the DoV threshold shape the answer?
//!
//! ```sh
//! cargo run --release --example visibility_query
//! ```

use hdov::core::ResultKey;
use hdov::prelude::*;
use hdov::visibility::DovConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::small().seed(11).generate();
    let grid = CellGridConfig::for_scene(&scene)
        .with_resolution(8, 8)
        .build();

    // Compute the ground-truth DoV table (offline step of the paper §5.1).
    let table = DovTable::compute(&scene, &grid, &DovConfig::default(), 0);
    let viewpoint = scene.bounds().center();
    let cell = grid.clamped_cell_of(viewpoint);

    println!(
        "cell {cell}: {} of {} objects visible, total DoV mass {:.4}",
        table.visible_count(cell),
        scene.len(),
        table.total_dov(cell)
    );

    // The five most visible objects from this cell.
    let mut visible: Vec<_> = table.cell(cell).to_vec();
    visible.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost visible objects:");
    for &(obj, dov) in visible.iter().take(5) {
        let o = scene.object(obj as u64);
        println!(
            "  object {:>4} ({:?}) at distance {:>6.1} m: DoV = {:.5}",
            obj,
            o.kind,
            o.mbr.distance_to_point(viewpoint),
            dov
        );
    }

    // Build the full environment and show how η reshapes the answer set.
    let mut env = HdovEnvironment::build_with_table(
        &scene,
        std::sync::Arc::new(grid),
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
        std::sync::Arc::new(table),
    )?;
    println!("\nanswer-set composition vs eta:");
    for eta in [0.0, 0.002, 0.01, 0.05] {
        let result = env.query(viewpoint, eta)?;
        let internals: Vec<u32> = result
            .entries()
            .iter()
            .filter_map(|e| match e.key {
                ResultKey::Internal(o) => Some(o),
                _ => None,
            })
            .collect();
        println!(
            "  eta={eta:<6} -> {} objects + {} internal LoDs {:?}, {} polygons",
            result.object_count(),
            result.internal_count(),
            internals,
            result.total_polygons()
        );
    }
    Ok(())
}
