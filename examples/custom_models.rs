//! Index your own models: import meshes (OBJ), build a scene, and run
//! HDoV-tree visibility queries over it — no synthetic city involved.
//!
//! ```sh
//! cargo run --release --example custom_models
//! ```

use hdov::mesh::{generate, io, TriMesh};
use hdov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend these came from disk: a hand-written OBJ pyramid plus a few
    // generated models exported and re-imported through the OBJ codec.
    let pyramid_obj = "\
v 0 0 0\nv 10 0 0\nv 10 10 0\nv 0 10 0\nv 5 5 8\n\
f 1 2 5\nf 2 3 5\nf 3 4 5\nf 4 1 5\nf 4 3 2 1\n";
    let mut meshes: Vec<TriMesh> = vec![io::from_obj(pyramid_obj)?];

    // A ring of assorted models around the pyramid.
    for i in 0..12 {
        let angle = i as f64 * std::f64::consts::TAU / 12.0;
        let at = Vec3::new(60.0 * angle.cos() + 80.0, 60.0 * angle.sin() + 80.0, 0.0);
        let mut m = match i % 3 {
            0 => generate::bunny(4.0, 2, i as u64),
            1 => generate::tower(Vec3::ZERO, 3.0, 25.0, 24),
            _ => generate::tessellated_box(Vec3::splat(-4.0), Vec3::splat(4.0), 4),
        };
        // Ground the model and move it into place (via OBJ round trip to
        // prove the codec path).
        let lift = -m.aabb().min.z;
        m.translate(Vec3::new(at.x, at.y, lift));
        let m = io::from_obj(&io::to_obj(&m))?;
        meshes.push(m);
    }

    let scene = Scene::from_meshes(meshes, 3, 0.3).expect("non-empty meshes");
    println!(
        "custom scene: {} objects, {} polygons, bounds {:?}",
        scene.len(),
        scene.total_polygons(),
        scene.bounds()
    );

    let cells = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    let mut env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;

    let vp = Vec3::new(80.0, 80.0, 1.7); // beside the pyramid
    for eta in [0.0, 0.01] {
        let (result, stats) = env.query_with_stats(vp, eta)?;
        println!(
            "eta={eta}: {} objects + {} internal LoDs, {} polygons, {:.2} ms",
            result.object_count(),
            result.internal_count(),
            result.total_polygons(),
            stats.search_time_ms()
        );
    }

    // Export what the query returned, as one merged OBJ a viewer can open.
    let result = env.query(vp, 0.01)?;
    let mut merged = TriMesh::new();
    for entry in result.entries() {
        if let hdov::core::ResultKey::Object(id) = entry.key {
            merged.append(&scene.world_mesh(id, entry.level));
        }
    }
    let out = std::env::temp_dir().join("hdov_query_result.obj");
    std::fs::write(&out, io::to_obj(&merged))?;
    println!(
        "wrote the visible set ({} triangles) to {}",
        merged.triangle_count(),
        out.display()
    );
    Ok(())
}
