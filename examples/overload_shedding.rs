//! Overload-resilient serving: more visitors than the server has capacity.
//!
//! Configures the full overload-protection stack on a [`SessionServer`] —
//! a per-frame [`QueryBudget`], the closed-loop AIMD η controller, and
//! strict admission slots — then offers 3× more sessions than slots, all
//! at once. The overflow is shed to the root's internal LoD (coarse frames,
//! zero I/O, never an error), admitted sessions trade fidelity for frame
//! time, and availability stays at 100%.
//!
//! ```sh
//! cargo run --release --example overload_shedding
//! ```
//!
//! [`QueryBudget`]: hdov::core::QueryBudget
//! [`SessionServer`]: hdov::walkthrough::SessionServer

use hdov::core::{PoolConfig, QueryBudget};
use hdov::prelude::*;
use hdov::walkthrough::{AdmissionConfig, EtaControlConfig, ServerConfig, SessionServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::tiny().seed(42).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    let env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;
    let shared = env.into_shared(PoolConfig::default());

    // Capacity: 2 concurrent visitors. Frames that would run long are cut
    // short at a 20 ms simulated budget (the rest of the scene is served
    // from internal LoDs), and the controller coarsens η whenever a frame
    // misses the 20 ms deadline.
    const SLOTS: usize = 2;
    const TARGET_MS: f64 = 20.0;
    let cfg = ServerConfig {
        budget: QueryBudget::sim_ms(TARGET_MS),
        control: Some(EtaControlConfig::for_target_ms(TARGET_MS)),
        admission: Some(AdmissionConfig::strict(SLOTS)),
        ..ServerConfig::default()
    };

    // Offer 3x the capacity, every session racing for a slot at once (one
    // worker per session). The first wave of admissions is resolved before
    // any session runs, so exactly `sessions - slots` of them are shed.
    let sessions: Vec<Session> = (0..SLOTS * 3)
        .map(|s| {
            Session::record(
                scene.viewpoint_region(),
                SessionKind::all()[s % 3],
                30,
                7 + s as u64,
            )
        })
        .collect();
    let server = SessionServer::new(&shared, cfg);
    let report = server.run(&sessions, sessions.len())?;

    println!(
        "{} sessions offered, {} slots -> {} shed\n",
        sessions.len(),
        SLOTS,
        report.shed_sessions()
    );
    println!("session  admitted  mean LoD rank  final eta  budget stops  page reads  failed");
    for o in &report.sessions {
        println!(
            "{:>7}  {:>8}  {:>13.3}  {:>9.5}  {:>12}  {:>10}  {:>6}",
            o.session,
            if o.shed { "shed" } else { "yes" },
            o.mean_served_lod(),
            o.eta_final,
            o.budget_stops,
            o.page_reads,
            o.failed_frames,
        );
    }
    println!(
        "\naggregate: p99 frame {:.2} ms, mean served LoD rank {:.3}, \
         {} deadline miss(es), {} eta raise(s), 0 errors",
        report.frame_ms_quantile(0.99),
        report.mean_served_lod(),
        report.deadline_misses(),
        report.sessions.iter().map(|o| o.eta_raises).sum::<u64>(),
    );
    println!(
        "admission book: {} admitted, {} shed, {} queued for a slot",
        report.backpressure.admitted, report.backpressure.shed, report.backpressure.queued,
    );
    Ok(())
}
