//! Replica failover: ride out a dead primary with zero degraded frames.
//!
//! Deploys a shared HDoV-tree with every pool padded to **two replicas**
//! ([`PoolConfig::replicas`]), then kills replica 0 outright — every raw
//! read of the primary fails ([`FaultPlan::dead`]). The read path fails
//! over to the healthy copy *before* the LoD-degradation fallback fires,
//! so a full recorded walkthrough serves byte-identical answers with zero
//! coarse frames, and the loss is visible only in the storage health
//! counters (`failover_reads`), never in the picture.
//!
//! ```sh
//! cargo run --release --example replica_failover
//! ```
//!
//! [`PoolConfig::replicas`]: hdov::core::PoolConfig

use hdov::core::{DeltaSearch, PoolConfig};
use hdov::prelude::*;
use hdov::storage::{FaultPlan, RetryPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::tiny().seed(29).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    let env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;
    // Two replicas per pool; no retries — a dead disk should cost one
    // failed attempt per miss, not a backoff ladder.
    let shared = env.into_shared(PoolConfig {
        replicas: 2,
        retry: RetryPolicy::NONE,
        ..PoolConfig::default()
    });

    // The clean twin: same frozen data, private cold pools, no faults
    // (forks never inherit injectors). Its replay is the reference picture.
    let clean = shared.fork_with_private_pools();

    let session = Session::record(scene.viewpoint_region(), SessionKind::Normal, 80, 7);

    let replay = |env: &hdov::core::SharedEnvironment| {
        let mut ctx = env.session();
        let mut delta = DeltaSearch::new();
        let mut frames = Vec::with_capacity(session.viewpoints.len());
        let mut degraded = 0u64;
        for &vp in &session.viewpoints {
            let (r, _, _) = env.query_delta(&mut ctx, vp, 0.002, &mut delta)?;
            if r.degrade().is_degraded() {
                degraded += 1;
            }
            frames.push(
                r.entries()
                    .iter()
                    .map(|e| (e.key, e.level, e.polygons, e.bytes))
                    .collect::<Vec<_>>(),
            );
        }
        Ok::<_, Box<dyn std::error::Error>>((frames, degraded))
    };

    let (reference, clean_degraded) = replay(&clean)?;
    assert_eq!(clean_degraded, 0, "the clean twin must not degrade");

    // Kill the primary: every raw read of replica 0, on every pool, fails.
    let injectors = shared.arm_replica_faults(0, &FaultPlan::dead());
    let (survived, degraded) = replay(&shared)?;

    let health = shared.storage_health();
    let denied: u64 = injectors.iter().map(|f| f.injected()).sum();
    println!("dead primary, {} frames replayed:", survived.len());
    println!("  reads denied by replica 0: {denied}");
    println!("  failover reads served:     {}", health.failover_reads);
    println!("  pages repaired:            {}", health.pages_repaired);
    println!("  degraded frames:           {degraded}");

    // The contract this example exists to demonstrate:
    assert_eq!(degraded, 0, "failover must fire before degradation");
    assert_eq!(survived, reference, "answers must be byte-identical");
    assert!(health.failover_reads > 0, "the dead disk was really dead");
    assert!(denied > 0);
    // An I/O-dead replica is not a repair target — its bytes were never
    // observed wrong, there is nothing to rewrite.
    assert_eq!(health.pages_repaired, 0);

    for f in &injectors {
        f.disarm();
    }
    println!("\nevery frame identical to the clean twin; degradation never fired");
    Ok(())
}
