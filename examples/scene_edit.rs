//! Mutating a scene: WAL-backed commits, epoch-pinned readers, and
//! crash-safe reopen (DESIGN.md §14).
//!
//! ```sh
//! cargo run --release --example scene_edit
//! ```

use hdov::core::{search_shared, PoolConfig, SessionCtx};
use hdov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::var_os("HDOV_STORE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/store"))
        .join("scene_edit");
    std::fs::remove_dir_all(&dir).ok();

    // 1. Build a mutable scene: the durable object table, DoV blob, and
    //    R-tree backbone land as shadow-paged store files under `dir`,
    //    plus a write-ahead log for everything committed since.
    let scene = CityConfig::tiny().seed(7).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(4, 4);
    let mut ms = MutableScene::create(
        &dir,
        "city",
        &scene,
        &cells,
        HdovBuildConfig::fast_test(),
        StorageScheme::IndexedVertical,
        PoolConfig::default(),
    )?;
    println!(
        "created: {} objects, {} cells, epoch {}",
        ms.len(),
        ms.grid().cell_count(),
        ms.epoch()
    );

    // 2. Readers pin an epoch. `current()` hands out the published
    //    environment; a session keeps answering against it — wait-free —
    //    no matter what commits land meanwhile.
    let pinned = ms.current();
    let mut ctx = SessionCtx::new();
    let cell = 0;
    let (before, _) = search_shared(&pinned, &mut ctx, cell, 0.0, None, false)?;
    println!(
        "cell {cell} sees {} entries at epoch {}",
        before.entries().len(),
        ms.epoch()
    );

    // 3. Stage a transaction: move a building, add a copy of another.
    //    Nothing is visible — or durable — until `commit`.
    let handles = ms.handles();
    let moved = handles[0];
    ms.translate(moved, Vec3::new(35.0, 0.0, 0.0))?;
    let src = ms.object(handles[1]).expect("live object");
    let added = ms.insert(
        src.kind,
        src.prototype,
        Aabb {
            min: src.mbr.min + Vec3::new(0.0, 40.0, 0.0),
            max: src.mbr.max + Vec3::new(0.0, 40.0, 0.0),
        },
    )?;
    println!(
        "staged {} edits (moved #{moved}, inserted #{added})",
        ms.pending_edits()
    );

    // 4. Commit: page images of every changed store page go to the WAL
    //    first, then the commit marker; only the DoV cells whose view could
    //    have changed are re-estimated, and a fresh epoch is published.
    let epoch = ms.commit()?;
    let mut ctx2 = SessionCtx::new();
    let (after, _) = search_shared(&ms.current(), &mut ctx2, cell, 0.0, None, false)?;
    println!(
        "committed epoch {epoch}: cell {cell} now sees {} entries",
        after.entries().len()
    );

    // The pinned pre-commit session still answers from its own epoch.
    let (still, _) = search_shared(&pinned, &mut ctx, cell, 0.0, None, false)?;
    assert_eq!(still.entries().len(), before.entries().len());
    println!(
        "pinned session still sees {} entries — no torn reads",
        still.entries().len()
    );

    // 5. Durability: drop everything and reopen. The WAL replays up to the
    //    last commit marker; a crash mid-commit would replay to the
    //    previous one instead (the crash-recovery CI job tortures this).
    let prototypes = scene.prototypes().clone();
    drop(pinned);
    drop(ms);
    let ms = MutableScene::open(
        &dir,
        "city",
        prototypes,
        HdovBuildConfig::fast_test(),
        StorageScheme::IndexedVertical,
        PoolConfig::default(),
    )?;
    assert_eq!(ms.epoch(), epoch);
    let mut ctx3 = SessionCtx::new();
    let (reopened, _) = search_shared(&ms.current(), &mut ctx3, cell, 0.0, None, false)?;
    assert_eq!(reopened.entries().len(), after.entries().len());
    println!(
        "reopened at epoch {} — WAL replay reproduced the answers",
        ms.epoch()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
