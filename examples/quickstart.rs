//! Quickstart: build an HDoV-tree over a small synthetic city and run
//! threshold visibility queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hdov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic city (~300 objects with LoD chains).
    let scene = CityConfig::small().seed(7).generate();
    println!(
        "scene: {} objects, {} full-detail polygons, {} of model data",
        scene.len(),
        scene.total_polygons(),
        human(scene.total_model_bytes())
    );

    // 2. Partition the walkable space into viewing cells and build the
    //    HDoV-tree: R-tree backbone + internal LoDs + per-cell DoV data,
    //    stored with the paper's best scheme (indexed-vertical).
    let cells = CellGridConfig::for_scene(&scene).with_resolution(8, 8);
    let mut env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;
    println!(
        "HDoV-tree: {} nodes, height {}, visibility store {}",
        env.tree().node_count(),
        env.tree().height(),
        human(env.vstore().storage_bytes())
    );

    // 3. Sweep the DoV threshold η at a street-level viewpoint: larger η
    //    terminates barely-visible subtrees at coarse internal LoDs.
    let viewpoint = scene.bounds().center();
    println!("\nquery at {viewpoint} — trade fidelity for speed with eta:");
    println!(
        "{:>8}  {:>8} {:>9} {:>10} {:>12} {:>10}",
        "eta", "objects", "internal", "polygons", "bytes", "time"
    );
    for eta in [0.0, 0.001, 0.004, 0.02] {
        let (result, stats) = env.query_with_stats(viewpoint, eta)?;
        println!(
            "{:>8}  {:>8} {:>9} {:>10} {:>12} {:>9.2}ms",
            eta,
            result.object_count(),
            result.internal_count(),
            result.total_polygons(),
            human(result.total_bytes()),
            stats.search_time_ms(),
        );
    }
    Ok(())
}

fn human(b: u64) -> String {
    if b > 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}
