//! An interactive-walkthrough comparison: play the same recorded session
//! through VISUAL (HDoV-tree + delta search) and REVIEW (R-tree window
//! queries) and compare frame times, fidelity, and memory.
//!
//! ```sh
//! cargo run --release --example city_walkthrough
//! ```

use hdov::prelude::*;
use hdov::review::ReviewConfig;
use hdov::walkthrough::{run_session, FrameModel, ReviewWalkthrough};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = CityConfig::small().seed(42).generate();
    let cells = CellGridConfig::for_scene(&scene).with_resolution(8, 8);

    // VISUAL: the HDoV-tree system at η = 0.001.
    let env = HdovEnvironment::build(
        &scene,
        &cells,
        HdovBuildConfig::default(),
        StorageScheme::IndexedVertical,
    )?;
    let mut visual = VisualSystem::new(env, 0.001)?;

    // REVIEW: 400 m query boxes (the paper's comparable-fidelity setting).
    let review_sys = ReviewSystem::build(
        &scene,
        ReviewConfig {
            box_size: 400.0,
            ..Default::default()
        },
    )?;
    let mut review = ReviewWalkthrough::new(
        review_sys,
        visual.env().dov_table_shared(),
        visual.env().grid_shared(),
    );

    // Record one session and play it through both systems.
    let session = Session::record(scene.viewpoint_region(), SessionKind::Normal, 150, 9);
    println!(
        "session: {} frames, {:.0} m walked\n",
        session.len(),
        session.path_length()
    );

    let fm = FrameModel::PAPER_ERA;
    let mv: WalkthroughMetrics = run_session(&mut visual, &session, &fm)?;
    let mr: WalkthroughMetrics = run_session(&mut review, &session, &fm)?;

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "system", "avg frame", "max spike", "variance", "coverage", "peak mem"
    );
    for m in [&mv, &mr] {
        println!(
            "{:<22} {:>8.2}ms {:>8.2}ms {:>10.2} {:>9.1}% {:>9.1}KB",
            m.system,
            m.avg_frame_time_ms(),
            m.max_frame_time_ms(),
            m.variance_frame_time(),
            100.0 * m.avg_dov_coverage(),
            m.peak_memory_bytes as f64 / 1024.0,
        );
    }
    println!(
        "\nVISUAL is {:.1}x faster per frame and misses {:.1} objects/frame vs REVIEW's {:.1}",
        mr.avg_frame_time_ms() / mv.avg_frame_time_ms(),
        mv.avg_missed_objects(),
        mr.avg_missed_objects(),
    );
    Ok(())
}
